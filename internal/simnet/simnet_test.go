package simnet

import (
	"errors"
	"testing"
	"time"

	"mobistreams/internal/clock"
)

func testClock() clock.Clock { return clock.NewScaled(20000) }

func newTestWiFi(t *testing.T, cfg WiFiConfig) (*WiFi, map[NodeID]*Endpoint) {
	t.Helper()
	w := NewWiFi(testClock(), cfg)
	eps := make(map[NodeID]*Endpoint)
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		ep := NewEndpoint(id, 1<<14)
		w.Join(ep)
		eps[id] = ep
	}
	return w, eps
}

func TestWiFiUnicastDelivers(t *testing.T) {
	w, eps := newTestWiFi(t, WiFiConfig{BitsPerSecond: 8e6})
	if err := w.Unicast("a", "b", ClassData, 1000, "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-eps["b"].Inbox():
		if m.From != "a" || m.Payload != "hello" || m.Size != 1000 {
			t.Fatalf("bad message: %+v", m)
		}
	default:
		t.Fatal("message not delivered")
	}
}

func TestWiFiUnicastUnreachable(t *testing.T) {
	w, eps := newTestWiFi(t, WiFiConfig{BitsPerSecond: 8e6})
	if err := w.Unicast("a", "zz", ClassData, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	w.SetPresent("b", false)
	if err := w.Unicast("a", "b", ClassData, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("departed member should be unreachable, got %v", err)
	}
	eps["c"].Seal()
	if err := w.Unicast("a", "c", ClassData, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("sealed endpoint should be unreachable, got %v", err)
	}
}

func TestWiFiAirtimeSerialises(t *testing.T) {
	clk := clock.NewScaled(300)
	w := NewWiFi(clk, WiFiConfig{BitsPerSecond: 1e6}) // 125 KB/s
	a, b := NewEndpoint("a", 16), NewEndpoint("b", 16)
	w.Join(a)
	w.Join(b)
	start := clk.Now()
	// Two back-to-back 125 KB transfers should take ~2 simulated seconds.
	if err := w.Unicast("a", "b", ClassData, 125000, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Unicast("a", "b", ClassData, 125000, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - start
	if elapsed < 1800*time.Millisecond || elapsed > 8*time.Second {
		t.Fatalf("two 1s transfers took %v of simulated time", elapsed)
	}
}

func TestWiFiBroadcastReachesAllPresent(t *testing.T) {
	w, eps := newTestWiFi(t, WiFiConfig{BitsPerSecond: 8e6})
	w.SetPresent("d", false)
	n := w.Broadcast("a", ClassCheckpoint, 1024, "blk")
	if n != 2 {
		t.Fatalf("broadcast receivers = %d, want 2 (b and c)", n)
	}
	for _, id := range []NodeID{"b", "c"} {
		select {
		case m := <-eps[id].Inbox():
			if m.Payload != "blk" {
				t.Fatalf("bad payload on %s: %v", id, m.Payload)
			}
		default:
			t.Fatalf("no datagram on %s", id)
		}
	}
	select {
	case <-eps["d"].Inbox():
		t.Fatal("absent member received broadcast")
	default:
	}
}

func TestWiFiBroadcastLoss(t *testing.T) {
	w, _ := newTestWiFi(t, WiFiConfig{BitsPerSecond: 8e6, LossProb: 0.5, Seed: 42})
	grams := make([]Datagram, 400)
	for i := range grams {
		grams[i] = Datagram{Size: 100, Payload: i}
	}
	counts := w.BroadcastBatch("a", ClassCheckpoint, grams)
	total := 0
	for _, c := range counts {
		total += c
	}
	// 400 datagrams x 3 receivers x 50% ~= 600 expected deliveries.
	if total < 450 || total > 750 {
		t.Fatalf("deliveries = %d, want ~600 under 50%% loss", total)
	}
}

func TestWiFiBroadcastChargesAirtimeOnce(t *testing.T) {
	// Speedup 200 keeps the 1 s broadcast at 5 ms of wall time; at 2000
	// the same airtime is a 0.5 ms sleep, and a couple of milliseconds
	// of timer overshoot reads back as several simulated seconds,
	// tripping the airtime bound without any airtime being re-charged.
	clk := clock.NewScaled(200)
	w := NewWiFi(clk, WiFiConfig{BitsPerSecond: 1e6})
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		w.Join(NewEndpoint(id, 1<<12))
	}
	start := clk.Now()
	w.Broadcast("a", ClassCheckpoint, 125000, nil) // 1 simulated second
	elapsed := clk.Now() - start
	// Three receivers, but airtime is one second, not three.
	if elapsed > 4*time.Second {
		t.Fatalf("broadcast took %v simulated, want ~1s (airtime charged once)", elapsed)
	}
	if got := w.Counters.Bytes(ClassCheckpoint); got != 125000 {
		t.Fatalf("checkpoint bytes = %d, want 125000", got)
	}
}

func TestWiFiRequestRespond(t *testing.T) {
	w, eps := newTestWiFi(t, WiFiConfig{BitsPerSecond: 8e6})
	go func() {
		m := <-eps["b"].Inbox()
		w.Respond(m, "b", ClassBitmap, 128, "bitmap")
	}()
	reply, err := w.Request("a", "b", ClassBitmap, 64, "query")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-reply:
		if m.Payload != "bitmap" || m.From != "b" {
			t.Fatalf("bad reply: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
	if w.Counters.Bytes(ClassBitmap) != 64+128 {
		t.Fatalf("bitmap bytes = %d, want 192", w.Counters.Bytes(ClassBitmap))
	}
}

func TestWiFiSealedReceiverDuringTransfer(t *testing.T) {
	w, eps := newTestWiFi(t, WiFiConfig{BitsPerSecond: 8e6})
	eps["b"].Seal()
	if err := w.Unicast("a", "b", ClassData, 100, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
}

func TestCountersAccumulateByClass(t *testing.T) {
	var c Counters
	c.Add(ClassData, 100)
	c.Add(ClassData, 50)
	c.Add(ClassCheckpoint, 9)
	if c.Bytes(ClassData) != 150 || c.Messages(ClassData) != 2 {
		t.Fatalf("data = %d bytes / %d msgs", c.Bytes(ClassData), c.Messages(ClassData))
	}
	if c.TotalBytes() != 159 {
		t.Fatalf("total = %d, want 159", c.TotalBytes())
	}
	snap := c.Snapshot()
	if snap["checkpoint"] != 9 {
		t.Fatalf("snapshot checkpoint = %d", snap["checkpoint"])
	}
	c.Reset()
	if c.TotalBytes() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestCellularSendAndRates(t *testing.T) {
	clk := clock.NewScaled(2000)
	cell := NewCellular(clk, CellularConfig{UpBitsPerSecond: 0.08e6, DownBitsPerSecond: 0.8e6})
	a, b := NewEndpoint("a", 64), NewEndpoint("b", 64)
	cell.Attach(a)
	cell.Attach(b)
	start := clk.Now()
	// 10 KB at 10 KB/s uplink ~= 1 simulated second (downlink 10x faster).
	if err := cell.Send("a", "b", ClassData, 10000, "x"); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - start
	if elapsed < 700*time.Millisecond || elapsed > 6*time.Second {
		t.Fatalf("uplink-bound transfer took %v, want ~1s", elapsed)
	}
	select {
	case m := <-b.Inbox():
		if m.Payload != "x" {
			t.Fatalf("bad payload %v", m.Payload)
		}
	default:
		t.Fatal("not delivered")
	}
}

func TestCellularUnreachable(t *testing.T) {
	cell := NewCellular(testClock(), CellularConfig{})
	a := NewEndpoint("a", 4)
	cell.Attach(a)
	if err := cell.Send("a", "nope", ClassControl, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want ErrUnreachable, got %v", err)
	}
	b := NewEndpoint("b", 4)
	cell.Attach(b)
	b.Seal()
	if err := cell.Send("a", "b", ClassControl, 10, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("sealed: want ErrUnreachable, got %v", err)
	}
	cell.Detach("b")
	if cell.Attached("b") {
		t.Fatal("detach did not remove device")
	}
}

func TestCellularRequestRespond(t *testing.T) {
	cell := NewCellular(testClock(), CellularConfig{UpBitsPerSecond: 8e6, DownBitsPerSecond: 8e6})
	a, b := NewEndpoint("a", 8), NewEndpoint("b", 8)
	cell.Attach(a)
	cell.Attach(b)
	go func() {
		m := <-b.Inbox()
		cell.Respond(m, "b", ClassControl, 32, "pong")
	}()
	reply, err := cell.Request("a", "b", ClassControl, 16, "ping")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-reply:
		if m.Payload != "pong" {
			t.Fatalf("bad reply %v", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no reply")
	}
}

func TestCellularSharedUplinkContention(t *testing.T) {
	clk := clock.NewScaled(2000)
	cell := NewCellular(clk, CellularConfig{UpBitsPerSecond: 0.08e6, DownBitsPerSecond: 8e6})
	a, b := NewEndpoint("a", 64), NewEndpoint("b", 64)
	cell.Attach(a)
	cell.Attach(b)
	done := make(chan time.Duration, 2)
	start := clk.Now()
	for i := 0; i < 2; i++ {
		go func() {
			cell.Send("a", "b", ClassData, 10000, nil)
			done <- clk.Now() - start
		}()
	}
	var last time.Duration
	for i := 0; i < 2; i++ {
		select {
		case d := <-done:
			if d > last {
				last = d
			}
		case <-time.After(5 * time.Second):
			t.Fatal("transfers did not complete")
		}
	}
	// Two 1-second transfers share one uplink: the last must finish
	// around 2 simulated seconds, not 1.
	if last < 1600*time.Millisecond {
		t.Fatalf("shared uplink finished too fast: %v", last)
	}
}

func TestEndpointSealUnseal(t *testing.T) {
	ep := NewEndpoint("x", 2)
	if ep.Sealed() {
		t.Fatal("new endpoint sealed")
	}
	ep.Seal()
	if !ep.Sealed() {
		t.Fatal("seal did not stick")
	}
	if ep.deliver(Message{}, false) {
		t.Fatal("delivered to sealed endpoint")
	}
	ep.Unseal()
	if !ep.deliver(Message{}, false) {
		t.Fatal("unsealed endpoint rejected delivery")
	}
}

func TestWiFiMembersAndRemove(t *testing.T) {
	w, _ := newTestWiFi(t, WiFiConfig{})
	if len(w.Members()) != 4 {
		t.Fatalf("members = %d, want 4", len(w.Members()))
	}
	w.Remove("d")
	if len(w.Members()) != 3 {
		t.Fatalf("members = %d after remove, want 3", len(w.Members()))
	}
	if w.Present("d") {
		t.Fatal("removed member still present")
	}
}

func TestClassString(t *testing.T) {
	if ClassData.String() != "data" || ClassTransfer.String() != "transfer" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "class(99)" {
		t.Fatal("unknown class name wrong")
	}
}

// TestUnicastChunksInterleave checks the airtime fairness that keeps
// checkpoint traffic flowing between data batches: a long batched data
// flow reserves the medium one chunk at a time, so a concurrent small
// transfer (a checkpoint block burst) slots in between chunks instead of
// waiting for the whole flow to drain.
func TestUnicastChunksInterleave(t *testing.T) {
	clk := clock.NewScaled(300)
	w := NewWiFi(clk, WiFiConfig{BitsPerSecond: 1e6}) // 125 KB/s, 64 KB chunks
	for _, id := range []NodeID{"a", "b", "c", "d"} {
		w.Join(NewEndpoint(id, 64))
	}
	// 1 MB data flow = ~8.4 s of airtime in 64 KB chunks.
	flowDone := make(chan time.Duration, 1)
	go func() {
		if err := w.Unicast("a", "b", ClassData, 1<<20, nil); err != nil {
			flowDone <- -1
			return
		}
		flowDone <- clk.Now()
	}()
	time.Sleep(3 * time.Millisecond) // ~0.9 s simulated: flow is mid-air
	start := clk.Now()
	if err := w.Unicast("c", "d", ClassCheckpoint, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - start
	if done := <-flowDone; done < 0 {
		t.Fatal("data flow failed")
	}
	// The checkpoint transfer needs ~0.5 s of airtime; waiting behind the
	// entire data flow would take over 7 s. Allow generous scheduler slack.
	if elapsed > 4*time.Second {
		t.Fatalf("checkpoint transfer waited %v behind the data flow; chunks did not interleave", elapsed)
	}
}

// TestWiFiFrameOverheadChargesAirtime checks that the per-frame cost is
// charged per transmission (what batching amortises) without inflating the
// payload byte accounting.
func TestWiFiFrameOverheadChargesAirtime(t *testing.T) {
	clk := clock.NewScaled(300)
	w := NewWiFi(clk, WiFiConfig{BitsPerSecond: 1e6, FrameOverhead: 125000})
	w.Join(NewEndpoint("a", 16))
	w.Join(NewEndpoint("b", 16))
	start := clk.Now()
	if err := w.Unicast("a", "b", ClassData, 125000, nil); err != nil {
		t.Fatal(err)
	}
	elapsed := clk.Now() - start
	// 125 KB payload + 125 KB frame overhead at 125 KB/s = ~2 s airtime
	// (upper bound loose: scaled-clock sleeps overshoot under load).
	if elapsed < 1800*time.Millisecond || elapsed > 10*time.Second {
		t.Fatalf("airtime with frame overhead = %v, want ~2 s", elapsed)
	}
	if got := w.Counters.Bytes(ClassData); got != 125000 {
		t.Fatalf("counted %d bytes, want payload-only 125000", got)
	}
}

// TestEndpointDropCounter checks that non-blocking (UDP-semantics)
// deliveries lost to a full inbox are counted rather than vanishing, while
// blocking deliveries and sealed-endpoint rejections are not.
func TestEndpointDropCounter(t *testing.T) {
	ep := NewEndpoint("a", 1)
	if !ep.deliver(Message{Class: ClassData}, false) {
		t.Fatal("first delivery into empty inbox failed")
	}
	for i := 0; i < 3; i++ {
		if ep.deliver(Message{Class: ClassData}, false) {
			t.Fatal("delivery into full inbox succeeded")
		}
	}
	if got := ep.Drops(); got != 3 {
		t.Fatalf("drops = %d, want 3", got)
	}
	// Sealed rejections are failures, not overflow: not counted.
	ep.Seal()
	ep.deliver(Message{Class: ClassData}, false)
	if got := ep.Drops(); got != 3 {
		t.Fatalf("drops after sealed rejection = %d, want 3", got)
	}
}
