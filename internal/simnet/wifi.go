package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/clock"
)

// WiFiConfig parameterises a region's ad-hoc WiFi.
type WiFiConfig struct {
	// BitsPerSecond is the per-channel medium capacity (paper: 1–5 Mbps).
	BitsPerSecond float64
	// LossProb is the independent per-receiver probability that a UDP
	// datagram is lost.
	LossProb float64
	// PropDelay is per-hop propagation/processing delay added after the
	// airtime completes.
	PropDelay time.Duration
	// ChunkBytes bounds a single airtime reservation; bulk sends are
	// split into chunks so concurrent flows interleave (default 64 KB).
	ChunkBytes int
	// FrameOverhead models the fixed per-transmission cost of the medium
	// — MAC/PHY framing, contention, link-layer ACKs — in byte-equivalents
	// of airtime charged once per unicast send or broadcast datagram
	// regardless of payload size. It is what edge-level tuple batching
	// amortises. Default 0 (payload-only accounting).
	FrameOverhead int
	// Channels is the number of independent airtime channels (access
	// points / spatial reuse). Members are assigned to channels
	// round-robin in Join order; a unicast occupies the sender's and the
	// receiver's channels (once when they share one), a broadcast
	// occupies every channel. The default 1 reproduces the classic
	// single shared medium exactly.
	Channels int
	// Assign, when non-nil, overrides round-robin channel assignment:
	// it maps a joining member to a channel (taken modulo Channels;
	// negative falls back to round-robin). This models deliberate AP
	// association — placing a fan-in neighbourhood on one channel keeps
	// its traffic in-cell instead of charging two cells per hop.
	Assign func(NodeID) int
	// Seed seeds the loss process for reproducibility.
	Seed int64
}

func (c *WiFiConfig) applyDefaults() {
	if c.BitsPerSecond <= 0 {
		c.BitsPerSecond = 3e6
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 << 10
	}
	if c.PropDelay < 0 {
		c.PropDelay = 0
	}
	if c.Channels <= 0 {
		c.Channels = 1
	}
}

// wifiChannel is one independent airtime domain. Reservations are made with
// a lock-free CAS on busyUntil: a transmission of B bytes reserves
// B/bandwidth of airtime starting at max(now, busyUntil), identical to the
// classic single-medium busy-until model.
type wifiChannel struct {
	// busyUntil is the simulated time the channel frees up (atomic ns).
	busyUntil int64
	// airtime accumulates every reserved duration (atomic ns): the exact
	// bytes-over-bitrate cost charged to this channel, independent of
	// idle gaps between reservations.
	airtime int64
}

// reserve books dur of airtime starting at max(now, busyUntil) and returns
// the reservation's end.
func (c *wifiChannel) reserve(now, dur time.Duration) time.Duration {
	atomic.AddInt64(&c.airtime, int64(dur))
	for {
		old := atomic.LoadInt64(&c.busyUntil)
		start := int64(now)
		if old > start {
			start = old
		}
		end := start + int64(dur)
		if atomic.CompareAndSwapInt64(&c.busyUntil, old, end) {
			return time.Duration(end)
		}
	}
}

// wifiMember is one endpoint's attachment: its channel assignment and
// whether it is in radio range. Guarded by its stripe's lock.
type wifiMember struct {
	ep      *Endpoint
	channel int
	present bool
}

// memberStripes shards the membership map so the per-send lookups of large
// regions do not serialise on one mutex.
const memberStripes = 16

type memberStripe struct {
	mu      sync.RWMutex
	members map[NodeID]*wifiMember
}

// WiFi is one region's shared-airtime broadcast medium, optionally split
// into several independent channels.
type WiFi struct {
	cfg WiFiConfig
	clk clock.Clock

	Counters Counters

	chans    []wifiChannel
	stripes  [memberStripes]memberStripe
	nextChan uint32 // round-robin channel assignment (atomic)

	// uniBytes/crossBytes account reliable unicast traffic (effective
	// bytes, retransmissions included): crossBytes is the subset whose
	// sender and receiver sit on different channels and therefore charged
	// two cells of airtime for one transfer (atomics).
	uniBytes   int64
	crossBytes int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewWiFi creates a WiFi medium.
func NewWiFi(clk clock.Clock, cfg WiFiConfig) *WiFi {
	cfg.applyDefaults()
	w := &WiFi{
		cfg:   cfg,
		clk:   clk,
		chans: make([]wifiChannel, cfg.Channels),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range w.stripes {
		w.stripes[i].members = make(map[NodeID]*wifiMember)
	}
	return w
}

func (w *WiFi) stripe(id NodeID) *memberStripe {
	// Inline FNV-1a over the string: hash.Hash32 plus a []byte
	// conversion would put two heap allocations on every membership
	// lookup of the send path.
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return &w.stripes[h%memberStripes]
}

// Join attaches an endpoint to the medium and marks it present. Channel
// assignment is round-robin in Join order, so a deterministic join sequence
// yields a deterministic channel map.
func (w *WiFi) Join(ep *Endpoint) {
	ch := int(atomic.AddUint32(&w.nextChan, 1)-1) % len(w.chans)
	if w.cfg.Assign != nil {
		if a := w.cfg.Assign(ep.ID); a >= 0 {
			ch = a % len(w.chans)
		}
	}
	s := w.stripe(ep.ID)
	s.mu.Lock()
	if m, ok := s.members[ep.ID]; ok {
		// Rejoining keeps the original channel assignment.
		m.ep = ep
		m.present = true
	} else {
		s.members[ep.ID] = &wifiMember{ep: ep, channel: ch, present: true}
	}
	s.mu.Unlock()
}

// SetPresent marks a member in or out of radio range. A departed phone
// (out of range) keeps its endpoint — it stays reachable over cellular.
func (w *WiFi) SetPresent(id NodeID, present bool) {
	s := w.stripe(id)
	s.mu.Lock()
	if m, ok := s.members[id]; ok {
		m.present = present
	}
	s.mu.Unlock()
}

// Present reports whether the member is in radio range.
func (w *WiFi) Present(id NodeID) bool {
	s := w.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.members[id]
	return ok && m.present
}

// Remove detaches an endpoint entirely (phone unregistered).
func (w *WiFi) Remove(id NodeID) {
	s := w.stripe(id)
	s.mu.Lock()
	delete(s.members, id)
	s.mu.Unlock()
}

// Members returns the IDs currently attached (present or not), in
// unspecified order.
func (w *WiFi) Members() []NodeID {
	var ids []NodeID
	for i := range w.stripes {
		s := &w.stripes[i]
		s.mu.RLock()
		for id := range s.members {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	return ids
}

// lookup snapshots one member's attachment state.
func (w *WiFi) lookup(id NodeID) (ep *Endpoint, channel int, present, ok bool) {
	s := w.stripe(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, found := s.members[id]
	if !found {
		return nil, 0, false, false
	}
	return m.ep, m.channel, m.present, true
}

// Channels reports the number of independent airtime channels.
func (w *WiFi) Channels() int { return len(w.chans) }

// ChannelOf reports a member's channel assignment.
func (w *WiFi) ChannelOf(id NodeID) (int, bool) {
	_, ch, _, ok := w.lookup(id)
	return ch, ok
}

// ChannelAirtime reports the total airtime reserved on a channel: exactly
// (effective bytes × 8 / BitsPerSecond) summed over every reservation the
// channel carried, independent of idle gaps.
func (w *WiFi) ChannelAirtime(i int) time.Duration {
	return time.Duration(atomic.LoadInt64(&w.chans[i].airtime))
}

// ChannelBusyUntil reports the simulated time a channel frees up.
func (w *WiFi) ChannelBusyUntil(i int) time.Duration {
	return time.Duration(atomic.LoadInt64(&w.chans[i].busyUntil))
}

// ChannelStat is one channel's membership and airtime snapshot.
type ChannelStat struct {
	Channel int
	// Members counts endpoints assigned to the channel (present or not);
	// Present counts the subset in radio range.
	Members int
	Present int
	// Airtime is the cumulative airtime reserved on the channel.
	Airtime time.Duration
}

// ChannelStats snapshots every channel's membership counts and cumulative
// airtime, ordered by channel index. Membership is read stripe-by-stripe,
// so counts are consistent per stripe but the snapshot as a whole is
// advisory under concurrent joins — exact for a quiesced medium.
func (w *WiFi) ChannelStats() []ChannelStat {
	stats := make([]ChannelStat, len(w.chans))
	for i := range stats {
		stats[i].Channel = i
		stats[i].Airtime = time.Duration(atomic.LoadInt64(&w.chans[i].airtime))
	}
	for i := range w.stripes {
		s := &w.stripes[i]
		s.mu.RLock()
		for _, m := range s.members {
			stats[m.channel].Members++
			if m.present {
				stats[m.channel].Present++
			}
		}
		s.mu.RUnlock()
	}
	return stats
}

// CrossChannelBytes reports the effective unicast bytes that crossed
// channels (charging both cells) and the effective unicast total. The ratio
// is the cross-channel airtime share the placement planner minimises.
func (w *WiFi) CrossChannelBytes() (cross, total int64) {
	return atomic.LoadInt64(&w.crossBytes), atomic.LoadInt64(&w.uniBytes)
}

// airtimeFor converts an effective byte count into airtime.
func (w *WiFi) airtimeFor(size int) time.Duration {
	return time.Duration(float64(size*8) / w.cfg.BitsPerSecond * float64(time.Second))
}

// occupyPair reserves airtime for size bytes on channel a and, when
// different, channel b (sender's and receiver's channels: both cells carry
// the transmission), sleeping in simulated time until the later reservation
// completes. It splits nothing — callers chunk bulk sends.
func (w *WiFi) occupyPair(size, a, b int) {
	dur := w.airtimeFor(size)
	now := w.clk.Now()
	end := w.chans[a].reserve(now, dur)
	if b != a {
		if e2 := w.chans[b].reserve(now, dur); e2 > end {
			end = e2
		}
	}
	if wait := end - now; wait > 0 {
		w.clk.Sleep(wait)
	}
}

// occupyAll reserves airtime for size bytes on every channel (broadcasts
// reach all cells) and sleeps until the latest reservation completes.
func (w *WiFi) occupyAll(size int) {
	dur := w.airtimeFor(size)
	now := w.clk.Now()
	var end time.Duration
	for i := range w.chans {
		if e := w.chans[i].reserve(now, dur); e > end {
			end = e
		}
	}
	if wait := end - now; wait > 0 {
		w.clk.Sleep(wait)
	}
}

// lost samples the per-receiver UDP loss process.
func (w *WiFi) lost() bool {
	if w.cfg.LossProb <= 0 {
		return false
	}
	w.rngMu.Lock()
	l := w.rng.Float64() < w.cfg.LossProb
	w.rngMu.Unlock()
	return l
}

// effectiveBytes inflates a payload by framing overhead and the
// retransmissions a reliable transfer pays on a lossy medium.
func (w *WiFi) effectiveBytes(size int) int {
	eff := size + w.cfg.FrameOverhead
	if w.cfg.LossProb > 0 && w.cfg.LossProb < 1 {
		eff = int(float64(eff) / (1 - w.cfg.LossProb))
	}
	return eff
}

// Unicast sends reliably (TCP-like) to one present member. The airtime is
// inflated by the loss rate to account for retransmissions. It blocks until
// the message is delivered and returns ErrUnreachable if the destination is
// absent, sealed, or detached.
func (w *WiFi) Unicast(from, to NodeID, class Class, size int, payload interface{}) error {
	return w.send(from, to, class, size, payload, nil)
}

// Request sends reliably like Unicast and arranges for the response to be
// delivered on the returned channel.
func (w *WiFi) Request(from, to NodeID, class Class, size int, payload interface{}) (chan Message, error) {
	reply := make(chan Message, 1)
	if err := w.send(from, to, class, size, payload, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// Respond answers a Request: it charges airtime for the response and
// delivers it directly to the requester's reply channel.
func (w *WiFi) Respond(req Message, from NodeID, class Class, size int, payload interface{}) {
	if req.Reply == nil {
		return
	}
	_, fromCh, _, fromOK := w.lookup(from)
	_, toCh, _, toOK := w.lookup(req.From)
	if !fromOK {
		fromCh = 0
	}
	if !toOK {
		toCh = fromCh
	}
	eff := w.effectiveBytes(size)
	w.occupyPair(eff, fromCh, toCh)
	atomic.AddInt64(&w.uniBytes, int64(eff))
	if fromCh != toCh {
		atomic.AddInt64(&w.crossBytes, int64(eff))
	}
	w.Counters.Add(class, size)
	if w.cfg.PropDelay > 0 {
		w.clk.Sleep(w.cfg.PropDelay)
	}
	req.Reply <- Message{From: from, To: req.From, Class: class, Size: size, Payload: payload}
}

func (w *WiFi) send(from, to NodeID, class Class, size int, payload interface{}, reply chan Message) error {
	_, fromCh, fromPresent, fromOK := w.lookup(from)
	ep, toCh, toPresent, toOK := w.lookup(to)
	if !toOK || !toPresent || !fromOK || !fromPresent || ep.Sealed() {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	// Reliable transfer over a lossy medium costs extra airtime for
	// retransmissions: effective bytes = (size + framing) / (1 - loss).
	remaining := w.effectiveBytes(size)
	atomic.AddInt64(&w.uniBytes, int64(remaining))
	if fromCh != toCh {
		atomic.AddInt64(&w.crossBytes, int64(remaining))
	}
	for remaining > 0 {
		chunk := remaining
		if chunk > w.cfg.ChunkBytes {
			chunk = w.cfg.ChunkBytes
		}
		w.occupyPair(chunk, fromCh, toCh)
		remaining -= chunk
	}
	w.Counters.Add(class, size)
	if w.cfg.PropDelay > 0 {
		w.clk.Sleep(w.cfg.PropDelay)
	}
	// Re-check reachability after airtime: the destination may have
	// failed while the transfer was queued.
	if !w.Present(to) || ep.Sealed() {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if !ep.deliver(Message{From: from, To: to, Class: class, Size: size, Payload: payload, Reply: reply}, true) {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	return nil
}

// Datagram is one UDP payload for BroadcastBatch.
type Datagram struct {
	Size    int
	Payload interface{}
}

// Broadcast sends one UDP datagram to every present member except the
// sender. Delivery is best-effort: each receiver independently loses the
// datagram with LossProb, and a full inbox drops it. The airtime is charged
// once per channel regardless of receiver count — this is the broadcast
// amortisation MobiStreams exploits (§III-C). It returns the number of
// members that received the datagram.
func (w *WiFi) Broadcast(from NodeID, class Class, size int, payload interface{}) int {
	res := w.BroadcastBatch(from, class, []Datagram{{Size: size, Payload: payload}})
	return res[0]
}

// BroadcastBatch sends a burst of UDP datagrams back-to-back, reserving
// airtime in chunks so concurrent flows interleave with the burst. It
// returns, per datagram, how many members received it.
func (w *WiFi) BroadcastBatch(from NodeID, class Class, grams []Datagram) []int {
	counts := make([]int, len(grams))
	if len(grams) == 0 {
		return counts
	}
	if !w.Present(from) {
		return counts
	}
	type target struct {
		id NodeID
		ep *Endpoint
	}
	var targets []target
	for i := range w.stripes {
		s := &w.stripes[i]
		s.mu.RLock()
		for id, m := range s.members {
			if id != from && m.present {
				targets = append(targets, target{id, m.ep})
			}
		}
		s.mu.RUnlock()
	}

	// Reserve airtime one chunk of datagrams at a time so concurrent
	// unicast flows interleave with a long burst, then deliver the
	// chunk's datagrams. Per-datagram timing below chunk resolution is
	// irrelevant to the protocol.
	for start := 0; start < len(grams); {
		end, bytes := start, 0
		for end < len(grams) && (bytes == 0 || bytes+grams[end].Size <= w.cfg.ChunkBytes) {
			bytes += grams[end].Size + w.cfg.FrameOverhead
			end++
		}
		w.occupyAll(bytes)
		for i := start; i < end; i++ {
			g := grams[i]
			w.Counters.Add(class, g.Size)
			for _, tg := range targets {
				if w.lost() {
					continue
				}
				if tg.ep.deliver(Message{From: from, To: tg.id, Class: class, Size: g.Size, Payload: g.Payload}, false) {
					counts[i]++
				}
			}
		}
		start = end
	}
	return counts
}

// Config returns the medium's configuration.
func (w *WiFi) Config() WiFiConfig { return w.cfg }
