package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mobistreams/internal/clock"
)

// WiFiConfig parameterises a region's ad-hoc WiFi.
type WiFiConfig struct {
	// BitsPerSecond is the shared medium capacity (paper: 1–5 Mbps).
	BitsPerSecond float64
	// LossProb is the independent per-receiver probability that a UDP
	// datagram is lost.
	LossProb float64
	// PropDelay is per-hop propagation/processing delay added after the
	// airtime completes.
	PropDelay time.Duration
	// ChunkBytes bounds a single airtime reservation; bulk sends are
	// split into chunks so concurrent flows interleave (default 64 KB).
	ChunkBytes int
	// FrameOverhead models the fixed per-transmission cost of the medium
	// — MAC/PHY framing, contention, link-layer ACKs — in byte-equivalents
	// of airtime charged once per unicast send or broadcast datagram
	// regardless of payload size. It is what edge-level tuple batching
	// amortises. Default 0 (payload-only accounting).
	FrameOverhead int
	// Seed seeds the loss process for reproducibility.
	Seed int64
}

func (c *WiFiConfig) applyDefaults() {
	if c.BitsPerSecond <= 0 {
		c.BitsPerSecond = 3e6
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 << 10
	}
	if c.PropDelay < 0 {
		c.PropDelay = 0
	}
}

// WiFi is one region's shared-airtime broadcast medium.
type WiFi struct {
	cfg WiFiConfig
	clk clock.Clock

	Counters Counters

	mu        sync.Mutex
	busyUntil time.Duration
	rng       *rand.Rand
	members   map[NodeID]*Endpoint
	present   map[NodeID]bool
}

// NewWiFi creates a WiFi medium.
func NewWiFi(clk clock.Clock, cfg WiFiConfig) *WiFi {
	cfg.applyDefaults()
	return &WiFi{
		cfg:     cfg,
		clk:     clk,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		members: make(map[NodeID]*Endpoint),
		present: make(map[NodeID]bool),
	}
}

// Join attaches an endpoint to the medium and marks it present.
func (w *WiFi) Join(ep *Endpoint) {
	w.mu.Lock()
	w.members[ep.ID] = ep
	w.present[ep.ID] = true
	w.mu.Unlock()
}

// SetPresent marks a member in or out of radio range. A departed phone
// (out of range) keeps its endpoint — it stays reachable over cellular.
func (w *WiFi) SetPresent(id NodeID, present bool) {
	w.mu.Lock()
	if _, ok := w.members[id]; ok {
		w.present[id] = present
	}
	w.mu.Unlock()
}

// Present reports whether the member is in radio range.
func (w *WiFi) Present(id NodeID) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.present[id]
}

// Remove detaches an endpoint entirely (phone unregistered).
func (w *WiFi) Remove(id NodeID) {
	w.mu.Lock()
	delete(w.members, id)
	delete(w.present, id)
	w.mu.Unlock()
}

// Members returns the IDs currently attached (present or not), in
// unspecified order.
func (w *WiFi) Members() []NodeID {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]NodeID, 0, len(w.members))
	for id := range w.members {
		ids = append(ids, id)
	}
	return ids
}

// occupy reserves airtime for size bytes, sleeping in simulated time until
// the reservation completes. It splits nothing — callers chunk bulk sends.
func (w *WiFi) occupy(size int) {
	dur := time.Duration(float64(size*8) / w.cfg.BitsPerSecond * float64(time.Second))
	w.mu.Lock()
	now := w.clk.Now()
	start := w.busyUntil
	if now > start {
		start = now
	}
	w.busyUntil = start + dur
	end := w.busyUntil
	w.mu.Unlock()
	if wait := end - now; wait > 0 {
		w.clk.Sleep(wait)
	}
}

// lost samples the per-receiver UDP loss process.
func (w *WiFi) lost() bool {
	if w.cfg.LossProb <= 0 {
		return false
	}
	w.mu.Lock()
	l := w.rng.Float64() < w.cfg.LossProb
	w.mu.Unlock()
	return l
}

// Unicast sends reliably (TCP-like) to one present member. The airtime is
// inflated by the loss rate to account for retransmissions. It blocks until
// the message is delivered and returns ErrUnreachable if the destination is
// absent, sealed, or detached.
func (w *WiFi) Unicast(from, to NodeID, class Class, size int, payload interface{}) error {
	return w.send(from, to, class, size, payload, nil)
}

// Request sends reliably like Unicast and arranges for the response to be
// delivered on the returned channel.
func (w *WiFi) Request(from, to NodeID, class Class, size int, payload interface{}) (chan Message, error) {
	reply := make(chan Message, 1)
	if err := w.send(from, to, class, size, payload, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// Respond answers a Request: it charges airtime for the response and
// delivers it directly to the requester's reply channel.
func (w *WiFi) Respond(req Message, from NodeID, class Class, size int, payload interface{}) {
	if req.Reply == nil {
		return
	}
	eff := size + w.cfg.FrameOverhead
	if w.cfg.LossProb > 0 && w.cfg.LossProb < 1 {
		eff = int(float64(eff) / (1 - w.cfg.LossProb))
	}
	w.occupy(eff)
	w.Counters.Add(class, size)
	if w.cfg.PropDelay > 0 {
		w.clk.Sleep(w.cfg.PropDelay)
	}
	req.Reply <- Message{From: from, To: req.From, Class: class, Size: size, Payload: payload}
}

func (w *WiFi) send(from, to NodeID, class Class, size int, payload interface{}, reply chan Message) error {
	w.mu.Lock()
	ep, ok := w.members[to]
	present := w.present[to] && w.present[from]
	w.mu.Unlock()
	if !ok || !present || ep.Sealed() {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	// Reliable transfer over a lossy medium costs extra airtime for
	// retransmissions: effective bytes = (size + framing) / (1 - loss).
	eff := size + w.cfg.FrameOverhead
	if w.cfg.LossProb > 0 && w.cfg.LossProb < 1 {
		eff = int(float64(eff) / (1 - w.cfg.LossProb))
	}
	remaining := eff
	for remaining > 0 {
		chunk := remaining
		if chunk > w.cfg.ChunkBytes {
			chunk = w.cfg.ChunkBytes
		}
		w.occupy(chunk)
		remaining -= chunk
	}
	w.Counters.Add(class, size)
	if w.cfg.PropDelay > 0 {
		w.clk.Sleep(w.cfg.PropDelay)
	}
	// Re-check reachability after airtime: the destination may have
	// failed while the transfer was queued.
	w.mu.Lock()
	present = w.present[to]
	w.mu.Unlock()
	if !present || ep.Sealed() {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if !ep.deliver(Message{From: from, To: to, Class: class, Size: size, Payload: payload, Reply: reply}, true) {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	return nil
}

// Datagram is one UDP payload for BroadcastBatch.
type Datagram struct {
	Size    int
	Payload interface{}
}

// Broadcast sends one UDP datagram to every present member except the
// sender. Delivery is best-effort: each receiver independently loses the
// datagram with LossProb, and a full inbox drops it. The airtime is charged
// once regardless of receiver count — this is the broadcast amortisation
// MobiStreams exploits (§III-C). It returns the number of members that
// received the datagram.
func (w *WiFi) Broadcast(from NodeID, class Class, size int, payload interface{}) int {
	res := w.BroadcastBatch(from, class, []Datagram{{Size: size, Payload: payload}})
	return res[0]
}

// BroadcastBatch sends a burst of UDP datagrams back-to-back, reserving
// airtime in chunks so concurrent flows interleave with the burst. It
// returns, per datagram, how many members received it.
func (w *WiFi) BroadcastBatch(from NodeID, class Class, grams []Datagram) []int {
	counts := make([]int, len(grams))
	if len(grams) == 0 {
		return counts
	}
	w.mu.Lock()
	if !w.present[from] {
		w.mu.Unlock()
		return counts
	}
	type target struct {
		id NodeID
		ep *Endpoint
	}
	targets := make([]target, 0, len(w.members))
	for id, ep := range w.members {
		if id != from && w.present[id] {
			targets = append(targets, target{id, ep})
		}
	}
	w.mu.Unlock()

	// Reserve airtime one chunk of datagrams at a time so concurrent
	// unicast flows interleave with a long burst, then deliver the
	// chunk's datagrams. Per-datagram timing below chunk resolution is
	// irrelevant to the protocol.
	for start := 0; start < len(grams); {
		end, bytes := start, 0
		for end < len(grams) && (bytes == 0 || bytes+grams[end].Size <= w.cfg.ChunkBytes) {
			bytes += grams[end].Size + w.cfg.FrameOverhead
			end++
		}
		w.occupy(bytes)
		for i := start; i < end; i++ {
			g := grams[i]
			w.Counters.Add(class, g.Size)
			for _, tg := range targets {
				if w.lost() {
					continue
				}
				if tg.ep.deliver(Message{From: from, To: tg.id, Class: class, Size: g.Size, Payload: g.Payload}, false) {
					counts[i]++
				}
			}
		}
		start = end
	}
	return counts
}

// Config returns the medium's configuration.
func (w *WiFi) Config() WiFiConfig { return w.cfg }
