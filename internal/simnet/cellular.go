package simnet

import (
	"fmt"
	"sync"
	"time"

	"mobistreams/internal/clock"
)

// CellularConfig parameterises the cellular network. The paper's measured
// 3G rates are 0.016–0.32 Mbps uplink and 0.35–1.14 Mbps downlink per
// device.
type CellularConfig struct {
	UpBitsPerSecond   float64
	DownBitsPerSecond float64
	// Latency is the one-way base latency of the cellular path.
	Latency time.Duration
	// ChunkBytes bounds one link reservation (default 64 KB).
	ChunkBytes int
	// SharedBps caps the cell tower's aggregate throughput; zero means
	// uncapped. When many phones transfer at once (simultaneous
	// departures, §IV-B) the tower becomes the bottleneck.
	SharedBps float64
}

func (c *CellularConfig) applyDefaults() {
	if c.UpBitsPerSecond <= 0 {
		c.UpBitsPerSecond = 0.1e6
	}
	if c.DownBitsPerSecond <= 0 {
		c.DownBitsPerSecond = 0.7e6
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 << 10
	}
}

// link is one direction of one device's cellular attachment.
type link struct {
	bps       float64
	busyUntil time.Duration
}

// Cellular is the wide-area network connecting phones to the controller and
// regions to each other. Each attached device has its own uplink and
// downlink; a transfer occupies the sender's uplink then the receiver's
// downlink.
type Cellular struct {
	cfg CellularConfig
	clk clock.Clock

	Counters Counters

	mu        sync.Mutex
	endpoints map[NodeID]*Endpoint
	up        map[NodeID]*link
	down      map[NodeID]*link
	tower     *link
}

// NewCellular creates a cellular network.
func NewCellular(clk clock.Clock, cfg CellularConfig) *Cellular {
	cfg.applyDefaults()
	c := &Cellular{
		cfg:       cfg,
		clk:       clk,
		endpoints: make(map[NodeID]*Endpoint),
		up:        make(map[NodeID]*link),
		down:      make(map[NodeID]*link),
	}
	if cfg.SharedBps > 0 {
		c.tower = &link{bps: cfg.SharedBps}
	}
	return c
}

// Attach registers an endpoint with default per-device rates.
func (c *Cellular) Attach(ep *Endpoint) {
	c.AttachRated(ep, c.cfg.UpBitsPerSecond, c.cfg.DownBitsPerSecond)
}

// AttachRated registers an endpoint with custom rates. The controller and
// data-center servers attach with high rates: their wired links are never
// the bottleneck.
func (c *Cellular) AttachRated(ep *Endpoint, upBps, downBps float64) {
	c.mu.Lock()
	c.endpoints[ep.ID] = ep
	c.up[ep.ID] = &link{bps: upBps}
	c.down[ep.ID] = &link{bps: downBps}
	c.mu.Unlock()
}

// Detach unregisters a device.
func (c *Cellular) Detach(id NodeID) {
	c.mu.Lock()
	delete(c.endpoints, id)
	delete(c.up, id)
	delete(c.down, id)
	c.mu.Unlock()
}

// Attached reports whether the device is registered.
func (c *Cellular) Attached(id NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.endpoints[id]
	return ok
}

// occupyLink reserves `size` bytes on l and returns the reservation end.
func (c *Cellular) occupyLink(l *link, size int) time.Duration {
	dur := time.Duration(float64(size*8) / l.bps * float64(time.Second))
	c.mu.Lock()
	now := c.clk.Now()
	start := l.busyUntil
	if now > start {
		start = now
	}
	l.busyUntil = start + dur
	end := l.busyUntil
	c.mu.Unlock()
	return end
}

// Send transfers size bytes from one device to another, occupying the
// sender's uplink and then the receiver's downlink, chunk by chunk. It
// blocks until delivery and returns ErrUnreachable if either side is
// detached or the destination is sealed.
func (c *Cellular) Send(from, to NodeID, class Class, size int, payload interface{}) error {
	return c.send(from, to, class, size, payload, nil)
}

// Request is Send plus a reply channel for RPC-style exchanges.
func (c *Cellular) Request(from, to NodeID, class Class, size int, payload interface{}) (chan Message, error) {
	reply := make(chan Message, 1)
	if err := c.send(from, to, class, size, payload, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// Respond answers a Request over the cellular path.
func (c *Cellular) Respond(req Message, from NodeID, class Class, size int, payload interface{}) error {
	if req.Reply == nil {
		return fmt.Errorf("simnet: respond without reply channel")
	}
	c.mu.Lock()
	upl := c.up[from]
	downl := c.down[req.From]
	c.mu.Unlock()
	if upl == nil || downl == nil {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, req.From)
	}
	c.transfer(upl, downl, size)
	c.Counters.Add(class, size)
	req.Reply <- Message{From: from, To: req.From, Class: class, Size: size, Payload: payload}
	return nil
}

func (c *Cellular) send(from, to NodeID, class Class, size int, payload interface{}, reply chan Message) error {
	c.mu.Lock()
	ep := c.endpoints[to]
	upl := c.up[from]
	downl := c.down[to]
	c.mu.Unlock()
	if ep == nil || upl == nil || downl == nil || ep.Sealed() {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	c.transfer(upl, downl, size)
	c.Counters.Add(class, size)
	if ep.Sealed() {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if !ep.deliver(Message{From: from, To: to, Class: class, Size: size, Payload: payload, Reply: reply}, true) {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	return nil
}

// transfer pipelines chunks through uplink then downlink and sleeps until
// the last chunk clears the downlink plus base latency.
func (c *Cellular) transfer(upl, downl *link, size int) {
	if size <= 0 {
		if c.cfg.Latency > 0 {
			c.clk.Sleep(c.cfg.Latency)
		}
		return
	}
	var lastEnd time.Duration
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if chunk > c.cfg.ChunkBytes {
			chunk = c.cfg.ChunkBytes
		}
		upEnd := c.occupyLink(upl, chunk)
		// The shared tower serialises concurrent transfers.
		if c.tower != nil {
			if tEnd := c.occupyLink(c.tower, chunk); tEnd > upEnd {
				upEnd = tEnd
			}
		}
		// The downlink reservation cannot start before the chunk has
		// cleared the uplink (and the tower).
		c.mu.Lock()
		if downl.busyUntil < upEnd {
			downl.busyUntil = upEnd
		}
		c.mu.Unlock()
		lastEnd = c.occupyLink(downl, chunk)
		remaining -= chunk
	}
	now := c.clk.Now()
	if wait := lastEnd + c.cfg.Latency - now; wait > 0 {
		c.clk.Sleep(wait)
	}
}

// Config returns the network's configuration.
func (c *Cellular) Config() CellularConfig { return c.cfg }
