package simnet

import (
	"testing"
	"time"
)

// legacyEff replicates the classic single-medium airtime charge for one
// reliable unicast: (size + framing) / (1 - loss), truncated to int bytes.
func legacyEff(cfg WiFiConfig, size int) int {
	eff := size + cfg.FrameOverhead
	if cfg.LossProb > 0 && cfg.LossProb < 1 {
		eff = int(float64(eff) / (1 - cfg.LossProb))
	}
	return eff
}

func airtimeOf(cfg WiFiConfig, bytes int) time.Duration {
	return time.Duration(float64(bytes*8) / cfg.BitsPerSecond * float64(time.Second))
}

// TestWiFiSingleChannelMatchesLegacy pins the refactored medium to the
// classic charge model: with channel count 1 (explicit or defaulted), a
// deterministic sequence of unicasts and broadcasts must charge exactly the
// legacy effective bytes — framing overhead, loss inflation, chunk-split
// bulk sends and broadcast bursts — byte for byte.
func TestWiFiSingleChannelMatchesLegacy(t *testing.T) {
	base := WiFiConfig{
		BitsPerSecond: 8e6,
		LossProb:      0.02,
		FrameOverhead: 600,
		ChunkBytes:    16 << 10,
	}
	for _, channels := range []int{0, 1} {
		cfg := base
		cfg.Channels = channels
		clk := testClock()
		w := NewWiFi(clk, cfg)
		for _, id := range []NodeID{"a", "b", "c"} {
			w.Join(NewEndpoint(id, 1<<10))
		}
		if w.Channels() != 1 {
			t.Fatalf("Channels=%d built %d channels, want 1", channels, w.Channels())
		}

		var want time.Duration
		// Small unicast, cross- and same-channel is irrelevant at N=1.
		if err := w.Unicast("a", "b", ClassData, 1000, nil); err != nil {
			t.Fatal(err)
		}
		want += airtimeOf(cfg, legacyEff(cfg, 1000))
		// Bulk unicast above ChunkBytes: split into chunks, total charge
		// unchanged.
		if err := w.Unicast("b", "c", ClassCheckpoint, 50<<10, nil); err != nil {
			t.Fatal(err)
		}
		want += airtimeOf(cfg, legacyEff(cfg, 50<<10))
		// Broadcast burst: per-datagram size + framing, no loss inflation
		// (UDP is best-effort; receivers sample loss instead).
		grams := []Datagram{{Size: 700}, {Size: 1200}, {Size: 300}}
		w.BroadcastBatch("c", ClassPreserve, grams)
		for _, g := range grams {
			want += airtimeOf(cfg, g.Size+cfg.FrameOverhead)
		}

		if got := w.ChannelAirtime(0); got != want {
			t.Fatalf("Channels=%d charged %v airtime, legacy model charges %v", channels, got, want)
		}
		// The serialised sends must also occupy at least that much
		// simulated time on the single medium.
		if now := clk.Now(); now < want {
			t.Fatalf("elapsed %v < charged airtime %v: reservations overlapped on one channel", now, want)
		}
	}
}

// TestWiFiMultiChannelAirtimeConservation checks per-channel accounting
// with 4 channels: every transmission charges exactly effective-bytes ×
// bitrate of airtime to the channels it touches (sender's and receiver's
// for unicast, all for broadcast), and simulated time bounds the busiest
// channel's airtime.
func TestWiFiMultiChannelAirtimeConservation(t *testing.T) {
	cfg := WiFiConfig{
		BitsPerSecond: 8e6,
		FrameOverhead: 400,
		Channels:      4,
	}
	clk := testClock()
	w := NewWiFi(clk, cfg)
	ids := []NodeID{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, id := range ids {
		w.Join(NewEndpoint(id, 1<<10))
	}
	// Round-robin assignment in join order.
	for i, id := range ids {
		ch, ok := w.ChannelOf(id)
		if !ok || ch != i%4 {
			t.Fatalf("member %s on channel %d, want %d", id, ch, i%4)
		}
	}

	want := make([]time.Duration, 4)
	// Same-channel unicast a(0) -> e(0): channel 0 only.
	if err := w.Unicast("a", "e", ClassData, 2000, nil); err != nil {
		t.Fatal(err)
	}
	want[0] += airtimeOf(cfg, legacyEff(cfg, 2000))
	// Cross-channel unicast a(0) -> b(1): both cells carry it.
	if err := w.Unicast("a", "b", ClassData, 3000, nil); err != nil {
		t.Fatal(err)
	}
	want[0] += airtimeOf(cfg, legacyEff(cfg, 3000))
	want[1] += airtimeOf(cfg, legacyEff(cfg, 3000))
	// Broadcast from c(2): every channel's AP repeats it.
	w.Broadcast("c", ClassPreserve, 1500, nil)
	for i := range want {
		want[i] += airtimeOf(cfg, 1500+cfg.FrameOverhead)
	}
	// Channel 3 saw only the broadcast: spatial reuse kept the unicasts
	// off it entirely.

	var busiest time.Duration
	for i := 0; i < 4; i++ {
		got := w.ChannelAirtime(i)
		if got != want[i] {
			t.Fatalf("channel %d charged %v, want %v", i, got, want[i])
		}
		if got > busiest {
			busiest = got
		}
	}
	if now := clk.Now(); now < busiest {
		t.Fatalf("elapsed %v < busiest channel airtime %v", now, busiest)
	}
	if w.ChannelAirtime(3) >= w.ChannelAirtime(0) {
		t.Fatal("channel 3 should carry strictly less airtime than channel 0")
	}
}

// TestWiFiChannelStatsAndCrossBytes checks the topology export the placement
// planner consumes: ChannelStats mirrors per-channel membership/presence and
// the airtime accumulators, and CrossChannelBytes counts exactly the unicast
// traffic whose endpoints sit on different channels.
func TestWiFiChannelStatsAndCrossBytes(t *testing.T) {
	cfg := WiFiConfig{
		BitsPerSecond: 8e6,
		FrameOverhead: 200,
		Channels:      3,
	}
	clk := testClock()
	w := NewWiFi(clk, cfg)
	ids := []NodeID{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		w.Join(NewEndpoint(id, 1<<10)) // round-robin: a,d->0 b,e->1 c,f->2
	}
	w.SetPresent("e", false) // departed but still attached

	// Same-channel a(0)->d(0), then cross-channel a(0)->b(1).
	if err := w.Unicast("a", "d", ClassData, 1000, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Unicast("a", "b", ClassData, 4000, nil); err != nil {
		t.Fatal(err)
	}
	cross, total := w.CrossChannelBytes()
	wantCross := int64(legacyEff(cfg, 4000))
	wantTotal := int64(legacyEff(cfg, 1000)) + wantCross
	if cross != wantCross || total != wantTotal {
		t.Fatalf("CrossChannelBytes = (%d, %d), want (%d, %d)", cross, total, wantCross, wantTotal)
	}

	stats := w.ChannelStats()
	if len(stats) != 3 {
		t.Fatalf("ChannelStats returned %d channels, want 3", len(stats))
	}
	wantMembers := []int{2, 2, 2}
	wantPresent := []int{2, 1, 2}
	for i, st := range stats {
		if st.Channel != i {
			t.Fatalf("stats[%d].Channel = %d", i, st.Channel)
		}
		if st.Members != wantMembers[i] || st.Present != wantPresent[i] {
			t.Fatalf("channel %d members/present = %d/%d, want %d/%d",
				i, st.Members, st.Present, wantMembers[i], wantPresent[i])
		}
		if st.Airtime != w.ChannelAirtime(i) {
			t.Fatalf("channel %d stats airtime %v != accumulator %v", i, st.Airtime, w.ChannelAirtime(i))
		}
	}
	if stats[0].Airtime <= stats[1].Airtime {
		t.Fatal("channel 0 carried both unicasts and must lead channel 1 on airtime")
	}
	if stats[2].Airtime != 0 {
		t.Fatalf("channel 2 idle but charged %v", stats[2].Airtime)
	}
}
