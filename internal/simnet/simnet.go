// Package simnet simulates the two networks a MobiStreams deployment runs
// on: the per-region ad-hoc WiFi (a single shared-airtime broadcast medium
// with lossy UDP and reliable TCP-like unicast) and the cellular network
// (asymmetric per-device uplink/downlink).
//
// The WiFi medium is the performance-critical substrate: the paper's central
// claims (dist-n checkpointing congesting the region, UDP broadcast
// amortising checkpoint persistence across all peers) are consequences of
// every transmission in a region sharing the same 1–5 Mbps of airtime. The
// medium is modelled with a busy-until reservation: a transmission of B
// bytes reserves B/bandwidth of airtime starting at max(now, busyUntil), and
// the sender sleeps (in simulated time) until its reservation completes.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// NodeID identifies a phone, a server, or the controller.
type NodeID string

// Class tags traffic so experiments can account bytes by purpose (Fig. 10b).
type Class int

const (
	// ClassData is application tuples flowing along graph edges.
	ClassData Class = iota
	// ClassReplication is duplicated tuples sent to standby replicas
	// (rep-2 scheme).
	ClassReplication
	// ClassCheckpoint is checkpoint state blocks (broadcast or unicast).
	ClassCheckpoint
	// ClassBitmap is broadcast bitmap queries and responses.
	ClassBitmap
	// ClassControl is controller traffic: pings, registrations, reports.
	ClassControl
	// ClassRecovery is recovery-time traffic: state reloads, replays.
	ClassRecovery
	// ClassCode is operator code shipped by the controller at placement
	// and recovery time.
	ClassCode
	// ClassTransfer is departure-time state transfer over cellular.
	ClassTransfer
	// ClassPreserve is source-preservation replication: sources
	// broadcasting admitted input so every node holds the replay log.
	ClassPreserve

	numClasses
)

var classNames = [...]string{"data", "replication", "checkpoint", "bitmap", "control", "recovery", "code", "transfer", "preserve"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ErrUnreachable is returned when the destination has failed, departed the
// region, or was never attached. Upstream neighbours use it to detect
// downstream failures (§III-D).
var ErrUnreachable = errors.New("simnet: destination unreachable")

// Message is what endpoints receive.
type Message struct {
	From, To NodeID
	Class    Class
	Size     int
	Payload  interface{}
	// Reply, when non-nil, is where the receiver should deliver its
	// response (via the network's Respond, which charges airtime).
	Reply chan Message
}

// Endpoint is a node's network attachment point. One endpoint serves both
// WiFi and cellular: handlers dispatch on Message.Class.
type Endpoint struct {
	ID    NodeID
	inbox chan Message
	drops int64 // non-blocking deliveries lost to a full inbox

	mu     sync.Mutex
	sealed bool
}

// NewEndpoint creates an endpoint with the given inbox capacity.
func NewEndpoint(id NodeID, capacity int) *Endpoint {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Endpoint{ID: id, inbox: make(chan Message, capacity)}
}

// Inbox returns the receive channel.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Seal marks the endpoint dead: subsequent deliveries fail. Used when a
// phone fails; pending messages remain readable so in-flight goroutines can
// drain before shutdown.
func (e *Endpoint) Seal() {
	e.mu.Lock()
	e.sealed = true
	e.mu.Unlock()
}

// Unseal revives a sealed endpoint (a replacement phone reusing an ID in
// tests, or a region restart).
func (e *Endpoint) Unseal() {
	e.mu.Lock()
	e.sealed = false
	e.mu.Unlock()
}

// Sealed reports whether the endpoint is dead.
func (e *Endpoint) Sealed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealed
}

// deliver places m into the inbox. If block is false and the inbox is full
// the message is dropped (UDP semantics) and deliver reports false.
func (e *Endpoint) deliver(m Message, block bool) bool {
	if e.Sealed() {
		return false
	}
	if block {
		e.inbox <- m
		return true
	}
	select {
	case e.inbox <- m:
		return true
	default:
		atomic.AddInt64(&e.drops, 1)
		return false
	}
}

// Drops reports how many non-blocking (UDP-semantics) deliveries this
// endpoint lost to a full inbox. Sealed-endpoint rejections are not
// counted: those are failures, not overflow. The region report surfaces
// the regional sum, so receiver-side overload is visible instead of
// silently thinning broadcast traffic.
func (e *Endpoint) Drops() int64 { return atomic.LoadInt64(&e.drops) }

// Counters accumulates bytes and message counts by traffic class. The
// accumulators are lock-free: every data-plane send passes through Add, so
// a shared mutex here becomes contention on the ingress hot path.
type Counters struct {
	bytes [numClasses]int64
	msgs  [numClasses]int64
}

// Add records one message of the given class and size.
func (c *Counters) Add(class Class, size int) {
	atomic.AddInt64(&c.bytes[class], int64(size))
	atomic.AddInt64(&c.msgs[class], 1)
}

// Bytes reports accumulated bytes for a class.
func (c *Counters) Bytes(class Class) int64 {
	return atomic.LoadInt64(&c.bytes[class])
}

// Messages reports accumulated message count for a class.
func (c *Counters) Messages(class Class) int64 {
	return atomic.LoadInt64(&c.msgs[class])
}

// TotalBytes reports bytes summed over all classes.
func (c *Counters) TotalBytes() int64 {
	var t int64
	for i := range c.bytes {
		t += atomic.LoadInt64(&c.bytes[i])
	}
	return t
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	for i := range c.bytes {
		atomic.StoreInt64(&c.bytes[i], 0)
		atomic.StoreInt64(&c.msgs[i], 0)
	}
}

// Snapshot returns a copy of per-class byte counts keyed by class name.
func (c *Counters) Snapshot() map[string]int64 {
	m := make(map[string]int64, numClasses)
	for i := Class(0); i < numClasses; i++ {
		m[i.String()] = c.Bytes(i)
	}
	return m
}
