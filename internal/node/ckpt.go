package node

import (
	"fmt"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/wire"
)

// CheckpointConfig parameterises the node's checkpoint pipeline.
//
// The default (incremental-async) pipeline stops the executor only for the
// in-memory state copy: the blob is built as a delta against the previous
// checkpoint where operators support it, and the flash write plus the
// chunked WiFi upload happen on the persist goroutine while tuples flow
// again. FullOnly restores the paper's worst case — every checkpoint
// serialises the whole state and writes it to flash inside the executor's
// stop-the-world window — which is what the `msbench -exp checkpoint`
// experiment compares against.
type CheckpointConfig struct {
	// FullOnly disables delta chains and moves the flash write into the
	// executor's critical section (synchronous full-blob checkpointing).
	FullOnly bool
	// RebaseEvery bounds the delta chain: every RebaseEvery-th checkpoint
	// is a self-contained full base blob (default 4), so restore replays
	// at most RebaseEvery links and a lost base dooms at most that many
	// versions.
	RebaseEvery int
	// MemCopyBps models the in-memory copy bandwidth of the short
	// stop-the-world window (default 400 MB/s — DRAM-speed serialisation
	// versus the ~10 MB/s flash the synchronous path stalls on).
	MemCopyBps float64
}

func (c CheckpointConfig) rebaseEvery() int {
	if c.RebaseEvery > 0 {
		return c.RebaseEvery
	}
	return 4
}

// copyTime is the modelled executor pause for copying n state bytes out of
// the operators at the tuple boundary.
func (c CheckpointConfig) copyTime(n int) time.Duration {
	bps := c.MemCopyBps
	if bps <= 0 {
		bps = 400e6
	}
	return time.Duration(float64(n) / bps * float64(time.Second))
}

// snapshotParts collects everything a checkpoint needs: the slot, the
// operator set and the edge counters from the compiled pipeline, the
// wire-encoded runtime state, and the delta-chain position. The runtime
// bytes are deterministic (sorted map order, fixed-width integers), so the
// same logical state always checkpoints to the same blob bytes — gob, the
// previous encoding here, randomised map entry order.
func (n *Node) snapshotParts() (slot string, ops []operator.Operator, extra []byte, base uint64, chainLen int, err error) {
	p := n.pipe.Load()
	if p == nil {
		return "", nil, nil, 0, 0, fmt.Errorf("node %s: snapshot without a hosted slot", n.id)
	}
	rt := runtimeState{
		OutSeq:     p.outSeqMap(),
		InHW:       p.inHWMap(),
		LogVersion: n.logVersion.Load(),
	}
	slot = p.slot
	ops = p.operators()
	n.mu.Lock()
	base = n.ckptBase
	chainLen = n.ckptChainLen
	n.mu.Unlock()
	// The blob retains the runtime bytes indefinitely, so encode into an
	// exact-size fresh buffer rather than a pooled scratch one.
	wrt := wire.Runtime{OutSeq: rt.OutSeq, InHW: rt.InHW, LogVersion: rt.LogVersion}
	extra = wire.AppendRuntime(make([]byte, 0, wire.SizeRuntime(&wrt)), &wrt)
	return slot, ops, extra, base, chainLen, nil
}

// snapshot builds a self-contained full checkpoint blob (periodic
// dist-n/local checkpoints and handoff transfers).
func (n *Node) snapshot(v uint64) (*checkpoint.Blob, error) {
	slot, ops, extra, _, _, err := n.snapshotParts()
	if err != nil {
		return nil, err
	}
	return checkpoint.BuildBlob(slot, v, ops, extra)
}

// buildCheckpoint builds the token-checkpoint blob: a delta against the
// previous checkpoint when the pipeline is incremental, the chain is under
// its rebase threshold and a prior basis exists; a full base blob
// otherwise. It advances the node's chain position and re-marks every
// delta-capable operator's baseline at v.
func (n *Node) buildCheckpoint(v uint64) (*checkpoint.Blob, error) {
	slot, ops, extra, base, chainLen, err := n.snapshotParts()
	if err != nil {
		return nil, err
	}
	ck := n.cfg.Checkpoint
	var blob *checkpoint.Blob
	if !ck.FullOnly && base != 0 && chainLen < ck.rebaseEvery()-1 {
		blob, err = checkpoint.BuildDeltaBlob(slot, v, base, ops, extra)
	} else {
		blob, err = checkpoint.BuildBlob(slot, v, ops, extra)
	}
	if err != nil {
		return nil, err
	}
	if !ck.FullOnly {
		for _, op := range ops {
			if ds, ok := op.(operator.DeltaSnapshotter); ok {
				ds.MarkSnapshot(v)
			}
		}
	}
	n.mu.Lock()
	n.ckptBase = v
	if blob.IsDelta() {
		n.ckptChainLen = chainLen + 1
	} else {
		n.ckptChainLen = 0
	}
	n.mu.Unlock()
	return blob, nil
}

// loadRestoreBlob materialises the full state for (v, slot): from the local
// chain when it is complete, otherwise from a live peer — a torn local
// chain (interrupted upload, missed dissemination) must not doom the
// restore while a peer holds a complete one.
func (n *Node) loadRestoreBlob(v uint64, slot string) *checkpoint.Blob {
	if blob, err := n.cfg.Store.MaterializeBlob(v, slot); err == nil {
		// Restoration reads the chain from local flash (§III-D: each node
		// reads state from local storage, in parallel across nodes). The
		// materialised blob's size is the full state size.
		n.clk.Sleep(n.cfg.Phone.FlashReadTime(blob.Size))
		return blob
	} else if v > 0 {
		n.logf("%s: local chain for %s v%d unusable: %v", n.id, slot, v, err)
	}
	for _, peer := range n.livePeers() {
		reply, err := n.cfg.WiFi.Request(n.id, peer, simnet.ClassRecovery, 32, FetchBlobReq{Slot: slot, Version: v})
		if err != nil {
			continue
		}
		select {
		case msg := <-reply:
			if b, ok := msg.Payload.(*checkpoint.Blob); ok && b != nil {
				return b
			}
		case <-n.clk.After(30 * time.Second):
		}
	}
	return nil
}
