package node

import (
	"runtime"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/graph"
	"mobistreams/internal/obs"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// EmitBenchResult summarises one emit-path measurement: the per-tuple
// allocation count and latency of driving a tuple through a compiled
// single-slot chain to an external sink.
type EmitBenchResult struct {
	Iters       int
	AllocsPerOp float64
	NsPerOp     float64
	Emitted     uint64
}

// legacyPassthrough is the seed-contract passthrough: one []Out slice per
// call — the allocation the emit-context contract removes.
type legacyPassthrough struct {
	operator.Base
}

func (*legacyPassthrough) Process(_ string, t *tuple.Tuple) ([]operator.Out, error) {
	return []operator.Out{operator.Emit(t)}, nil
}

// emitBenchNode assembles the benchmark harness: a three-operator chain
// (src -> m1 -> m2 -> out) compiled onto one slot, so every emission runs
// the in-slot recursion of the compiled pipeline and the final operator
// publishes externally. No goroutines are started; the caller drives runOp
// directly, exactly like the executor's steady-state path. A non-nil obs
// registry compiles the observability hooks in, exactly as a region does.
func emitBenchNode(legacy bool, reg *obs.Registry, onOut func(*tuple.Tuple)) *Node {
	var gb graph.Builder
	gb.AddOperator("src", "s1").AddOperator("m1", "s1").
		AddOperator("m2", "s1").AddOperator("out", "s1")
	gb.Chain("src", "m1", "m2", "out")
	g, err := gb.Build()
	if err != nil {
		panic(err)
	}
	identity := func(in *tuple.Tuple) *tuple.Tuple { return in }
	factory := func(id string) operator.Factory {
		if legacy {
			return func() operator.Operator {
				return &legacyPassthrough{Base: operator.Base{Name: id}}
			}
		}
		if id == "src" || id == "out" {
			return func() operator.Operator { return operator.NewPassthrough(id) }
		}
		return func() operator.Operator { return operator.NewMap(id, identity) }
	}
	opReg := operator.Registry{}
	for _, id := range g.Operators() {
		opReg[id] = factory(id)
	}
	return New(Config{
		ID: "bench", Graph: g, Registry: opReg,
		Slot: "s1", OpIDs: g.OpsOnSlot("s1"),
		Clock: clock.NewScaled(1e6), Obs: reg, OnSinkOutput: onOut,
	})
}

// RunEmitBench measures the emit path for iters tuples: legacy=false runs
// the emit-context contract (the steady state must not allocate at all),
// legacy=true runs the same chain through seed-contract operators and the
// []Out adapter. The node carries a live obs registry with sampling off,
// so the 0-allocs pin covers the instrumented hot path — tracing compiled
// in, histograms recording, no tuple sampled. Exported so the msbench
// regression gate and the Go benchmarks share one harness.
func RunEmitBench(legacy bool, iters int) EmitBenchResult {
	var emitted uint64
	n := emitBenchNode(legacy, obs.NewRegistry(), func(*tuple.Tuple) { emitted++ })
	p := n.pipe.Load()
	idx := p.opIndex("src")
	t := &tuple.Tuple{Seq: 1, Size: 64, Value: 1.0}
	for i := 0; i < 128; i++ { // warm up lazily-grown state
		n.runOp(p, idx, "", t)
	}
	emitted = 0
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	start := time.Now()
	for i := 0; i < iters; i++ {
		n.runOp(p, idx, "", t)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	return EmitBenchResult{
		Iters:       iters,
		AllocsPerOp: float64(ms.Mallocs-m0) / float64(iters),
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		Emitted:     emitted,
	}
}
