package node

import "mobistreams/internal/simnet"

// EpochResolver is a Resolver whose placement carries a monotonically
// increasing epoch: any change to a slot's primary or standby bumps the
// epoch. Nodes cache resolutions per slot and invalidate the whole cache on
// an epoch change, replacing the per-send resolver round-trip (a region-
// wide mutex plus a map lookup) with one atomic epoch load — while keeping
// failover correctness, because recovery, migration and handoff all repoint
// placements through epoch-bumping region calls.
type EpochResolver interface {
	Resolver
	Epoch() uint64
}

// routeEntry caches one resolution, including negative results (an
// unplaced slot or a promoted-away standby stays unresolvable until the
// next epoch bump).
type routeEntry struct {
	id simnet.NodeID
	ok bool
}

// routeSnapshot is one immutable epoch-stamped cache generation. Lookups
// load the pointer, verify the epoch, and read the maps without locking;
// misses install a copy-on-write successor. Racing installs are benign —
// whichever snapshot lands last simply serves the next lookup.
type routeSnapshot struct {
	epoch   uint64
	primary map[string]routeEntry
	standby map[string]routeEntry
}

// resolvePrimary resolves a slot's primary through the epoch cache, or
// straight through the resolver when caching is unavailable or disabled.
func (n *Node) resolvePrimary(slot string) (simnet.NodeID, bool) {
	er := n.epochRes
	if er == nil {
		return n.cfg.Resolver.Primary(slot)
	}
	epoch := er.Epoch()
	rs := n.routes.Load()
	if rs != nil && rs.epoch == epoch {
		if e, hit := rs.primary[slot]; hit {
			return e.id, e.ok
		}
	}
	// The epoch must be read before the resolution: if a placement change
	// slips between the two, the stored snapshot carries the old epoch
	// and self-invalidates on the next lookup.
	id, ok := er.Primary(slot)
	n.installRoute(rs, epoch, slot, routeEntry{id, ok}, true)
	return id, ok
}

// resolveStandby resolves a slot's standby through the epoch cache.
func (n *Node) resolveStandby(slot string) (simnet.NodeID, bool) {
	er := n.epochRes
	if er == nil {
		return n.cfg.Resolver.Standby(slot)
	}
	epoch := er.Epoch()
	rs := n.routes.Load()
	if rs != nil && rs.epoch == epoch {
		if e, hit := rs.standby[slot]; hit {
			return e.id, e.ok
		}
	}
	id, ok := er.Standby(slot)
	n.installRoute(rs, epoch, slot, routeEntry{id, ok}, false)
	return id, ok
}

// installRoute publishes a copy-on-write snapshot extending prev (when it
// is still the current epoch) with one fresh entry.
func (n *Node) installRoute(prev *routeSnapshot, epoch uint64, slot string, e routeEntry, primary bool) {
	next := &routeSnapshot{
		epoch:   epoch,
		primary: make(map[string]routeEntry, 4),
		standby: make(map[string]routeEntry, 4),
	}
	if prev != nil && prev.epoch == epoch {
		for k, v := range prev.primary {
			next.primary[k] = v
		}
		for k, v := range prev.standby {
			next.standby[k] = v
		}
	}
	if primary {
		next.primary[slot] = e
	} else {
		next.standby[slot] = e
	}
	n.routes.Store(next)
}
