package node

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"mobistreams/internal/checkpoint"
	"mobistreams/internal/clock"
	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// legacySum is a seed-contract operator (Process returning []Out): the
// executor must run it through the adapter with identical state evolution
// and checkpoint bytes as before the emit-context redesign.
type legacySum struct {
	operator.Base
	sum float64
	n   uint64
}

func (l *legacySum) Process(_ string, t *tuple.Tuple) ([]operator.Out, error) {
	v, _ := t.Value.(float64)
	l.sum += v
	l.n++
	out := t.Clone()
	out.Value = l.sum
	return []operator.Out{operator.Emit(out)}, nil
}

func (l *legacySum) Snapshot() ([]byte, error) {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(l.n))
	binary.BigEndian.PutUint64(buf[8:16], uint64(int64(l.sum*1000)))
	return buf[:], nil
}

func (l *legacySum) Restore(data []byte) error {
	l.n = binary.BigEndian.Uint64(data[0:8])
	l.sum = float64(int64(binary.BigEndian.Uint64(data[8:16]))) / 1000
	return nil
}

func (*legacySum) StateSize() int { return 16 }

func adapterHarness(t *testing.T, sink func(*tuple.Tuple)) *Node {
	t.Helper()
	var gb graph.Builder
	gb.AddOperator("src", "s1").AddOperator("acc", "s1").AddOperator("out", "s1")
	gb.Chain("src", "acc", "out")
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	reg := operator.Registry{
		"src": func() operator.Operator { return operator.NewPassthrough("src") },
		"acc": func() operator.Operator { return &legacySum{Base: operator.Base{Name: "acc"}} },
		"out": func() operator.Operator { return operator.NewPassthrough("out") },
	}
	return New(Config{
		ID: "phone-a", Graph: g, Registry: reg,
		Slot: "s1", OpIDs: g.OpsOnSlot("s1"),
		Clock: clock.NewScaled(1000), OnSinkOutput: sink,
	})
}

func feedAdapter(n *Node, lo, hi int) {
	p := n.pipe.Load()
	idx := p.opIndex("src")
	for i := lo; i <= hi; i++ {
		n.runOp(p, idx, "", &tuple.Tuple{Seq: uint64(i), Size: 8, Value: float64(i)})
	}
}

// TestLegacyAdapterCheckpointRoundTrip pins the adapter round-trip: a
// legacy operator processed under the new executor checkpoints, restores
// into a fresh node, re-checkpoints byte-identically, and continues
// processing in lockstep with the original.
func TestLegacyAdapterCheckpointRoundTrip(t *testing.T) {
	var outs1, outs2 []float64
	n1 := adapterHarness(t, func(tt *tuple.Tuple) { outs1 = append(outs1, tt.Value.(float64)) })
	feedAdapter(n1, 1, 10)
	if len(outs1) != 10 || outs1[9] != 55 {
		t.Fatalf("legacy emissions through the adapter: %v", outs1)
	}

	blob1, err := n1.snapshot(3)
	if err != nil {
		t.Fatal(err)
	}
	if !blob1.VerifyCRC() {
		t.Fatal("blob CRC broken")
	}

	n2 := adapterHarness(t, func(tt *tuple.Tuple) { outs2 = append(outs2, tt.Value.(float64)) })
	if err := checkpoint.RestoreBlob(blob1, n2.pipe.Load().operators()); err != nil {
		t.Fatal(err)
	}
	blob2, err := n2.snapshot(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1.EncodeState(), blob2.EncodeState()) {
		t.Fatal("restored checkpoint not byte-identical")
	}

	// Both nodes keep processing identically after the round-trip.
	feedAdapter(n1, 11, 15)
	feedAdapter(n2, 11, 15)
	b3, _ := n1.snapshot(4)
	b4, _ := n2.snapshot(4)
	if !bytes.Equal(b3.EncodeState(), b4.EncodeState()) {
		t.Fatal("post-restore processing diverged from the original")
	}
	if len(outs2) != 5 || outs2[4] != outs1[14] {
		t.Fatalf("post-restore emissions diverged: %v vs %v", outs2, outs1[10:])
	}
}

// rearmOp pathologically re-registers an already-due timer from OnTimer —
// the operator bug the bounded timer drain must survive.
type rearmOp struct {
	operator.Base
	fired int
}

func (r *rearmOp) Process(ctx *operator.Context, _ string, t *tuple.Tuple) error {
	ctx.SetTimer(0) // due immediately
	return nil
}

func (r *rearmOp) OnTimer(ctx *operator.Context, at time.Duration) error {
	r.fired++
	ctx.SetTimer(at) // still due: must defer to the next boundary
	return nil
}

// TestFireDueTimersBoundedDrain pins the spin guard: a timer re-registered
// during the drain with an already-due deadline is deferred, not fired in
// the same drain.
func TestFireDueTimersBoundedDrain(t *testing.T) {
	var gb graph.Builder
	gb.AddOperator("src", "s1").AddOperator("w", "s1").AddOperator("out", "s1")
	gb.Chain("src", "w", "out")
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	op := &rearmOp{Base: operator.Base{Name: "w"}}
	reg := operator.Registry{
		"src": func() operator.Operator { return operator.NewPassthrough("src") },
		"w":   func() operator.Operator { return op },
		"out": func() operator.Operator { return operator.NewPassthrough("out") },
	}
	n := New(Config{ID: "a", Graph: g, Registry: reg, Slot: "s1",
		OpIDs: g.OpsOnSlot("s1"), Clock: clock.NewScaled(1000)})
	p := n.pipe.Load()
	n.runOp(p, p.opIndex("src"), "", &tuple.Tuple{Seq: 1, Size: 8})
	if len(p.timers) != 1 {
		t.Fatalf("timer not armed: %d pending", len(p.timers))
	}
	n.fireDueTimers(p)
	if op.fired != 1 {
		t.Fatalf("drain fired %d times, want exactly 1 (re-arm deferred)", op.fired)
	}
	if len(p.timers) != 1 {
		t.Fatalf("re-registered timer lost: %d pending", len(p.timers))
	}
	n.fireDueTimers(p) // the next boundary serves the deferred timer once
	if op.fired != 2 {
		t.Fatalf("deferred timer not served at the next boundary: fired %d", op.fired)
	}
}
