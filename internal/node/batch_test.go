package node

import (
	"sync"
	"testing"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/metrics"
	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// mapResolver is a static slot-to-phone map for wiring a sender without a
// region.
type mapResolver map[string]simnet.NodeID

func (r mapResolver) Primary(slot string) (simnet.NodeID, bool) {
	id, ok := r[slot]
	return id, ok
}

func (mapResolver) Standby(string) (simnet.NodeID, bool) { return "", false }

// newBatchHarness wires one sending node to a receiving endpoint over a
// fast WiFi medium, without starting any goroutines: flushes are driven
// explicitly by the tests.
func newBatchHarness(t *testing.T, batch BatchConfig) (*Node, *simnet.Endpoint) {
	t.Helper()
	clk := clock.NewScaled(1e6)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 1e12})
	tx := simnet.NewEndpoint("tx", 1024)
	rx := simnet.NewEndpoint("rx", 1024)
	w.Join(tx)
	w.Join(rx)
	n := New(Config{
		Phone:    phone.New("tx", phone.Config{}),
		Scheme:   ft.BaseScheme,
		Clock:    clk,
		WiFi:     w,
		Endpoint: tx,
		Resolver: mapResolver{"down": "rx"},
		Batch:    batch,
	})
	return n, rx
}

func streamMsg(seq uint64) StreamMsg {
	return StreamMsg{FromSlot: "up", ToSlot: "down", ToOp: "op", EdgeSeq: seq,
		Item: tuple.DataItem(&tuple.Tuple{Seq: seq, Size: 100})}
}

func recvPayloads(rx *simnet.Endpoint) []interface{} {
	var out []interface{}
	for {
		select {
		case m := <-rx.Inbox():
			out = append(out, m.Payload)
		default:
			return out
		}
	}
}

func TestBatcherCoalescesInOrder(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{MaxMsgs: 100})
	for seq := uint64(1); seq <= 5; seq++ {
		n.batch.add("down", streamMsg(seq))
	}
	if got := recvPayloads(rx); len(got) != 0 {
		t.Fatalf("sent %d payloads before any flush", len(got))
	}
	n.batch.flushAll()
	got := recvPayloads(rx)
	if len(got) != 1 {
		t.Fatalf("payloads = %d, want one batch", len(got))
	}
	bm, ok := got[0].(BatchMsg)
	if !ok {
		t.Fatalf("payload is %T, want BatchMsg", got[0])
	}
	if len(bm.Msgs) != 5 {
		t.Fatalf("batch carries %d msgs, want 5", len(bm.Msgs))
	}
	for i, m := range bm.Msgs {
		if m.EdgeSeq != uint64(i+1) {
			t.Fatalf("batch order broken: %d at position %d", m.EdgeSeq, i)
		}
	}
	if bm.WireSize() != 500 {
		t.Fatalf("wire size = %d, want 500", bm.WireSize())
	}
}

func TestBatcherFlushesAtMaxMsgs(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{MaxMsgs: 3})
	for seq := uint64(1); seq <= 7; seq++ {
		n.batch.add("down", streamMsg(seq))
	}
	got := recvPayloads(rx)
	if len(got) != 2 {
		t.Fatalf("payloads = %d, want 2 full batches (7th message still pending)", len(got))
	}
	if n.batch.pendingSlots() != 1 {
		t.Fatalf("pending slots = %d, want 1", n.batch.pendingSlots())
	}
}

func TestBatcherFlushesAtMaxBytes(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{MaxMsgs: 100, MaxBytes: 250})
	n.batch.add("down", streamMsg(1))
	n.batch.add("down", streamMsg(2))
	if got := recvPayloads(rx); len(got) != 0 {
		t.Fatal("flushed below the byte bound")
	}
	n.batch.add("down", streamMsg(3)) // 300 bytes >= 250
	if got := recvPayloads(rx); len(got) != 1 {
		t.Fatalf("payloads = %d, want 1 byte-bound flush", len(got))
	}
}

func TestBatcherMarkerFlushesImmediately(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{MaxMsgs: 100})
	n.batch.add("down", streamMsg(1))
	n.batch.add("down", streamMsg(2))
	marker := StreamMsg{FromSlot: "up", ToSlot: "down", EdgeSeq: 3,
		Item: tuple.MarkerItem(tuple.Marker{Kind: tuple.MarkerToken, Version: 7})}
	n.batch.add("down", marker)
	got := recvPayloads(rx)
	if len(got) != 1 {
		t.Fatalf("payloads = %d, want 1 (marker must not wait on the latency bound)", len(got))
	}
	bm := got[0].(BatchMsg)
	if len(bm.Msgs) != 3 || bm.Msgs[2].Item.Marker == nil {
		t.Fatalf("marker batch wrong: %d msgs, last marker %v", len(bm.Msgs), bm.Msgs[2].Item.Marker)
	}
	if bm.Msgs[0].EdgeSeq != 1 || bm.Msgs[1].EdgeSeq != 2 {
		t.Fatal("tuples before the marker were reordered")
	}
}

func TestBatcherDisabledSendsSingles(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{Disable: true})
	n.batch.add("down", streamMsg(1))
	n.batch.add("down", streamMsg(2))
	got := recvPayloads(rx)
	if len(got) != 2 {
		t.Fatalf("payloads = %d, want 2 singles", len(got))
	}
	for i, p := range got {
		if _, ok := p.(StreamMsg); !ok {
			t.Fatalf("payload %d is %T, want the unbatched StreamMsg wire format", i, p)
		}
	}
}

func TestBatcherDiscardAll(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{MaxMsgs: 100})
	n.batch.add("down", streamMsg(1))
	n.batch.discardAll()
	n.batch.flushAll()
	if got := recvPayloads(rx); len(got) != 0 {
		t.Fatalf("discarded batch was sent: %d payloads", len(got))
	}
	if n.batch.pendingSlots() != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestBatcherObservesStats(t *testing.T) {
	var stats metrics.BatchSizes
	clk := clock.NewScaled(1e6)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 1e12})
	tx, rx := simnet.NewEndpoint("tx", 64), simnet.NewEndpoint("rx", 64)
	w.Join(tx)
	w.Join(rx)
	n := New(Config{
		Phone: phone.New("tx", phone.Config{}), Scheme: ft.BaseScheme, Clock: clk,
		WiFi: w, Endpoint: tx, Resolver: mapResolver{"down": "rx"},
		Batch: BatchConfig{MaxMsgs: 4}, BatchStats: &stats,
	})
	for seq := uint64(1); seq <= 8; seq++ {
		n.batch.add("down", streamMsg(seq))
	}
	if stats.Flushes() != 2 || stats.Msgs() != 8 || stats.Mean() != 4 || stats.Max() != 4 {
		t.Fatalf("stats = %d flushes / %d msgs / %.1f mean / %d max",
			stats.Flushes(), stats.Msgs(), stats.Mean(), stats.Max())
	}
	_ = rx
}

// TestEnqueueStreamBatchUnbatches checks the receive half: a BatchMsg is
// unbatched into the upstream queue in order under one lock.
func TestEnqueueStreamBatchUnbatches(t *testing.T) {
	n := &Node{
		queues: map[string]*upQueue{"up": newStreamQueue(false)},
		slot:   "s",
		logf:   func(string, ...interface{}) {},
	}
	n.cond = sync.NewCond(&n.mu)
	msgs := takeBatchSlice()
	for seq := uint64(1); seq <= 4; seq++ {
		msgs = append(msgs, streamMsg(seq))
	}
	msgs = append(msgs, streamMsg(4)) // in-window duplicate: dropped
	n.enqueueStreamBatch(BatchMsg{ToSlot: "s", Msgs: msgs})
	q := n.queues["up"]
	if q.len() != 4 {
		t.Fatalf("queue has %d items, want 4", q.len())
	}
	for want := uint64(1); want <= 4; want++ {
		if got := q.pop().edgeSeq; got != want {
			t.Fatalf("popped %d, want %d", got, want)
		}
	}
}

// TestBatcherConcurrentFlushKeepsFIFO hammers add/flush from two
// goroutines and checks the receiver observes strictly increasing edge
// sequences — the sendMu ordering contract.
func TestBatcherConcurrentFlushKeepsFIFO(t *testing.T) {
	n, rx := newBatchHarness(t, BatchConfig{MaxMsgs: 8})
	const total = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			n.batch.flushAll()
			time.Sleep(time.Microsecond)
		}
	}()
	for seq := uint64(1); seq <= total; seq++ {
		n.batch.add("down", streamMsg(seq))
	}
	<-done
	n.batch.flushAll()
	var last uint64
	count := 0
	for _, p := range recvPayloads(rx) {
		var batch []StreamMsg
		switch m := p.(type) {
		case StreamMsg:
			batch = []StreamMsg{m}
		case BatchMsg:
			batch = m.Msgs
		}
		for _, m := range batch {
			if m.EdgeSeq <= last {
				t.Fatalf("sequence %d arrived after %d", m.EdgeSeq, last)
			}
			last = m.EdgeSeq
			count++
		}
	}
	if count != total {
		t.Fatalf("received %d msgs, want %d", count, total)
	}
}
