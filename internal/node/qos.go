package node

import (
	"sync/atomic"
	"time"

	"mobistreams/internal/graph"
)

// QoS consolidates the output-path quality-of-service knobs that were
// previously scattered across the raw BatchConfig bounds. The zero value
// changes nothing: legacy BatchConfig fields pass through untouched, so
// old-style configurations behave identically.
type QoS struct {
	// LatencyBudget is the end-to-end latency target for tuples flowing
	// from this graph's sources to its sinks. Non-zero enables adaptive
	// output batching (Nephele-style): each slot receives
	// budget / (longest remaining batching-hop count to a sink) as its
	// flush-deadline share, and tunes the live deadline inside that share
	// — a latency-triggered flush that went out mostly empty shrinks it
	// (the stream is too slow to fill batches inside the deadline), a
	// size-triggered flush grows it back toward the share.
	LatencyBudget time.Duration
	// MaxBatchMsgs bounds batch size in messages, superseding the
	// deprecated BatchConfig.MaxMsgs when non-zero.
	MaxBatchMsgs int
	// MaxBatchBytes bounds batch size in payload bytes, superseding the
	// deprecated BatchConfig.MaxBytes when non-zero.
	MaxBatchBytes int
	// MinFlush floors the adaptive flush deadline (default 1ms).
	MinFlush time.Duration
	// DisableBatching sends every message individually, superseding
	// BatchConfig.Disable.
	DisableBatching bool
}

// mergeBatch folds the QoS batch bounds over the legacy BatchConfig. A
// zero QoS returns the legacy config unchanged — the compatibility
// adapter that keeps old-style size/latency bounds working.
func (q QoS) mergeBatch(legacy BatchConfig) BatchConfig {
	if q.MaxBatchMsgs > 0 {
		legacy.MaxMsgs = q.MaxBatchMsgs
	}
	if q.MaxBatchBytes > 0 {
		legacy.MaxBytes = q.MaxBatchBytes
	}
	if q.DisableBatching {
		legacy.Disable = true
	}
	return legacy
}

func (q QoS) minFlush() time.Duration {
	if q.MinFlush > 0 {
		return q.MinFlush
	}
	return time.Millisecond
}

// slotHops is the longest chain of cross-slot edges from slot to a sink
// slot — the number of batching hops an emission from this slot may wait
// on. Sink slots report 0. A cycle in the slot projection (ops bouncing
// between two slots) contributes no further depth.
func slotHops(g *graph.Graph, slot string) int {
	memo := make(map[string]int)
	stack := make(map[string]bool)
	var visit func(s string) int
	visit = func(s string) int {
		if v, ok := memo[s]; ok {
			return v
		}
		if stack[s] {
			return 0
		}
		stack[s] = true
		best := 0
		for _, d := range g.SlotDownstreams(s) {
			if h := visit(d) + 1; h > best {
				best = h
			}
		}
		delete(stack, s)
		memo[s] = best
		return best
	}
	return visit(slot)
}

// slotBudgetShare splits the end-to-end latency budget evenly across the
// batching hops between this slot and the sinks: the per-slot flush
// deadline cap the adaptive batcher works under. Zero when QoS batching
// is off or the slot feeds no further slot.
func (n *Node) slotBudgetShare(slot string) time.Duration {
	if n.cfg.QoS.LatencyBudget <= 0 {
		return 0
	}
	hops := slotHops(n.graph, slot)
	if hops < 1 {
		return 0
	}
	return n.cfg.QoS.LatencyBudget / time.Duration(hops)
}

// setBudget installs (or clears) the batcher's adaptive deadline range:
// the slot's budget share as the cap and initial deadline, min as the
// floor. share <= 0 disables adaptation (legacy fixed FlushInterval).
func (b *batcher) setBudget(share, min time.Duration) {
	if share <= 0 {
		atomic.StoreInt64(&b.capNs, 0)
		atomic.StoreInt64(&b.deadlineNs, 0)
		return
	}
	if min <= 0 || min > share {
		min = share
	}
	atomic.StoreInt64(&b.minNs, int64(min))
	atomic.StoreInt64(&b.capNs, int64(share))
	atomic.StoreInt64(&b.deadlineNs, int64(share))
}

// flushInterval is the live latency bound the flush loop waits on: the
// adaptive deadline when QoS batching is on, the fixed legacy interval
// otherwise.
func (b *batcher) flushInterval() time.Duration {
	if d := atomic.LoadInt64(&b.deadlineNs); d > 0 {
		return time.Duration(d)
	}
	return b.cfg.FlushInterval
}

// noteSizeFlush records a size-triggered flush: batches are filling
// before the deadline, so the deadline can grow back toward the slot's
// budget share, coalescing more per send.
func (b *batcher) noteSizeFlush() {
	cap := atomic.LoadInt64(&b.capNs)
	if cap == 0 {
		return
	}
	cur := atomic.LoadInt64(&b.deadlineNs)
	if next := cur + cur/4; next < cap {
		atomic.StoreInt64(&b.deadlineNs, next)
	} else {
		atomic.StoreInt64(&b.deadlineNs, cap)
	}
}

// noteLatencyFlush records a latency-triggered flush carrying msgs
// messages: a mostly-empty batch means the stream cannot fill batches
// inside the deadline, so the deadline shrinks toward the floor — tuples
// stop paying coalescing wait the workload cannot use.
func (b *batcher) noteLatencyFlush(msgs int) {
	cap := atomic.LoadInt64(&b.capNs)
	if cap == 0 || msgs >= b.cfg.MaxMsgs/2 {
		return
	}
	cur := atomic.LoadInt64(&b.deadlineNs)
	min := atomic.LoadInt64(&b.minNs)
	if next := cur - cur/4; next > min {
		atomic.StoreInt64(&b.deadlineNs, next)
	} else {
		atomic.StoreInt64(&b.deadlineNs, min)
	}
}

// pendingMsgs counts the messages waiting across all partial batches
// (adaptive feedback for latency-triggered flushes; off the hot path).
func (b *batcher) pendingMsgs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := 0
	for _, eb := range b.pending {
		total += len(eb.msgs)
	}
	return total
}
