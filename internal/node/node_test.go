package node

import (
	"testing"
	"testing/quick"

	"mobistreams/internal/tuple"
)

func item(seq uint64) queued {
	return queued{edgeSeq: seq, item: tuple.DataItem(&tuple.Tuple{Seq: seq, Size: 1})}
}

func drain(q *upQueue) []uint64 {
	var seqs []uint64
	for q.len() > 0 {
		seqs = append(seqs, q.pop().edgeSeq)
	}
	return seqs
}

func TestUnorderedQueueWindowDedup(t *testing.T) {
	q := newStreamQueue(false)
	for _, seq := range []uint64{1, 2, 2, 1, 3, 5, 4} {
		q.enqueue(item(seq))
	}
	// Dedup-window mode: repeats of recently seen sequences (2, 1) drop,
	// but a genuine out-of-order arrival (4 after 5) is legitimate input
	// and must be delivered, not mistaken for a duplicate.
	got := drain(q)
	want := []uint64{1, 2, 3, 5, 4}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// Regression for out-of-order arrivals on unordered queues being dropped
// as duplicates: any sequence below the high watermark used to be thrown
// away, losing legitimate tuples that merely overtook each other on the
// network.
func TestUnorderedQueueOutOfOrderNotDropped(t *testing.T) {
	q := newStreamQueue(false)
	q.enqueue(item(10))
	q.enqueue(item(3)) // below watermark but never seen: keep
	q.enqueue(item(3)) // true duplicate inside the window: drop
	got := drain(q)
	want := []uint64{10, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	if q.lastEnq != 10 {
		t.Fatalf("watermark = %d, want 10", q.lastEnq)
	}
}

func TestUnorderedQueueDedupWindowBounded(t *testing.T) {
	q := newStreamQueue(false)
	for seq := uint64(1); seq <= dedupWindow+10; seq++ {
		q.enqueue(item(seq))
	}
	// Sequence 1 has been evicted from the window: a very late duplicate
	// slips through here and is caught by sink-side dedup instead.
	if !q.enqueue(item(1)) {
		t.Fatal("evicted sequence wrongly treated as duplicate")
	}
	// A sequence still inside the window stays suppressed.
	if q.enqueue(item(dedupWindow + 10)) {
		t.Fatal("in-window duplicate delivered")
	}
	if len(q.recent) > dedupWindow {
		t.Fatalf("window grew unbounded: %d", len(q.recent))
	}
}

func TestOrderedQueueParksAndDrains(t *testing.T) {
	q := newStreamQueue(true)
	// Fresh data overtakes a recovery resend: 4 and 5 park until 1..3
	// arrive, then everything delivers in sequence order.
	q.enqueue(item(4))
	q.enqueue(item(5))
	if q.len() != 0 {
		t.Fatalf("out-of-order items delivered early: %d", q.len())
	}
	q.enqueue(item(1))
	q.enqueue(item(2))
	q.enqueue(item(3))
	got := drain(q)
	for i, seq := range []uint64{1, 2, 3, 4, 5} {
		if got[i] != seq {
			t.Fatalf("order = %v", got)
		}
	}
	if len(q.park) != 0 {
		t.Fatalf("park not drained: %d", len(q.park))
	}
}

func TestOrderedQueueDuplicateDrop(t *testing.T) {
	q := newStreamQueue(true)
	q.enqueue(item(1))
	q.enqueue(item(1))
	q.enqueue(item(2))
	q.enqueue(item(2))
	if got := drain(q); len(got) != 2 {
		t.Fatalf("delivered %v, want [1 2]", got)
	}
}

func TestOrderedQueueFlushValve(t *testing.T) {
	q := newStreamQueue(true)
	// An unfillable gap (seq 1 never arrives) must not deadlock: past
	// the park limit, parked items flush in order.
	for seq := uint64(2); seq <= uint64(parkLimit+3); seq++ {
		q.enqueue(item(seq))
	}
	got := drain(q)
	if len(got) == 0 {
		t.Fatal("valve never flushed")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("flush out of order at %d: %v...", i, got[:i+1])
		}
	}
	if q.lastEnq < uint64(parkLimit) {
		t.Fatalf("watermark did not advance: %d", q.lastEnq)
	}
}

func TestQueuePopCompaction(t *testing.T) {
	q := newStreamQueue(false)
	for seq := uint64(1); seq <= 1000; seq++ {
		q.enqueue(item(seq))
	}
	for i := 0; i < 600; i++ {
		q.pop()
	}
	if q.len() != 400 {
		t.Fatalf("len = %d, want 400", q.len())
	}
	// Compaction must have reclaimed the consumed prefix.
	if q.head > 512 {
		t.Fatalf("head = %d, compaction never ran", q.head)
	}
	if got := q.pop().edgeSeq; got != 601 {
		t.Fatalf("next = %d, want 601", got)
	}
}

func TestCommandAndReportNames(t *testing.T) {
	if CmdToken.String() != "token" || CmdFetchRestore.String() != "fetch-restore" {
		t.Fatal("command names wrong")
	}
	if RepCheckpointed.String() != "checkpointed" || RepHandoffDone.String() != "handoff-done" {
		t.Fatal("report names wrong")
	}
	if CommandOp(99).String() != "cmd(?)" || ReportType(99).String() != "report(?)" {
		t.Fatal("unknown names wrong")
	}
}

// Property: an ordered queue delivers exactly the set {1..n} in order for
// any arrival permutation (no gaps, duplicates injected freely).
func TestOrderedQueuePermutationProperty(t *testing.T) {
	f := func(permSeed uint32, n uint8, dupEvery uint8) bool {
		k := int(n%64) + 1
		q := newStreamQueue(true)
		perm := make([]uint64, k)
		for i := range perm {
			perm[i] = uint64(i + 1)
		}
		s := permSeed
		for i := k - 1; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s % uint32(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i, seq := range perm {
			q.enqueue(item(seq))
			// Widen before adding one: dupEvery=255 would overflow
			// uint8 to 0 and panic on i%0.
			if dupEvery > 0 && i%(int(dupEvery)+1) == 0 {
				q.enqueue(item(seq)) // duplicate injection
			}
		}
		got := drain(q)
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i] != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the flushPark overflow valve delivers parked items in strictly
// increasing sequence order and jumps the watermark past everything it
// flushed, for any shuffled arrival order and any unfillable gap pattern —
// including a second failure opening a second gap after the first flush.
func TestOrderedQueueFlushValveProperty(t *testing.T) {
	f := func(permSeed uint32, gapSeed uint32) bool {
		q := newStreamQueue(true)
		// Two bursts, each with gaps that never fill (lost edge logs).
		// Burst sequences start at 2 so sequence 1 is a permanent gap.
		total := parkLimit + 64
		seqs := make([]uint64, 0, 2*total)
		skip := func(s, seed uint64) bool { return (s*2654435761+seed)%17 == 0 }
		for s := uint64(2); len(seqs) < total; s++ {
			if !skip(s, uint64(gapSeed)) {
				seqs = append(seqs, s)
			}
		}
		// Second failure: another unfillable gap far past the first.
		base := seqs[len(seqs)-1] + 100
		for s := base; len(seqs) < 2*total; s++ {
			if !skip(s, uint64(gapSeed)+1) {
				seqs = append(seqs, s)
			}
		}
		// Shuffle within each burst (bursts arrive in order).
		r := permSeed
		shuffle := func(part []uint64) {
			for i := len(part) - 1; i > 0; i-- {
				r = r*1664525 + 1013904223
				j := int(r % uint32(i+1))
				part[i], part[j] = part[j], part[i]
			}
		}
		shuffle(seqs[:total])
		shuffle(seqs[total:])
		for _, s := range seqs {
			q.enqueue(item(s))
		}
		q.flushPark() // drain any sub-limit remainder for inspection
		got := drain(q)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Logf("out of order at %d: %d after %d", i, got[i], got[i-1])
				return false
			}
		}
		// The valve degrades to bounded loss, never deadlock: everything
		// parked at overflow time (at least parkLimit items) delivers,
		// and arrivals after the watermark jump keep flowing. Stragglers
		// below a jumped watermark are the designed loss.
		if len(got) < parkLimit {
			t.Logf("delivered only %d of %d", len(got), len(seqs))
			return false
		}
		sent := make(map[uint64]bool, len(seqs))
		for _, s := range seqs {
			sent[s] = true
		}
		for _, s := range got {
			if !sent[s] {
				t.Logf("delivered %d was never sent", s)
				return false
			}
		}
		// The watermark jumped past the highest delivered sequence.
		if q.lastEnq != got[len(got)-1] {
			t.Logf("watermark %d, want %d", q.lastEnq, got[len(got)-1])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
