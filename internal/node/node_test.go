package node

import (
	"testing"
	"testing/quick"

	"mobistreams/internal/tuple"
)

func item(seq uint64) queued {
	return queued{edgeSeq: seq, item: tuple.DataItem(&tuple.Tuple{Seq: seq, Size: 1})}
}

func drain(q *upQueue) []uint64 {
	var seqs []uint64
	for q.len() > 0 {
		seqs = append(seqs, q.pop().edgeSeq)
	}
	return seqs
}

func TestUnorderedQueueWatermarkDedup(t *testing.T) {
	q := &upQueue{}
	for _, seq := range []uint64{1, 2, 2, 1, 3, 5, 4} {
		q.enqueue(item(seq))
	}
	// Watermark mode: duplicates and late arrivals below the watermark
	// drop; gaps pass through (5 accepted, 4 dropped as stale).
	got := drain(q)
	want := []uint64{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

func TestOrderedQueueParksAndDrains(t *testing.T) {
	q := &upQueue{ordered: true}
	// Fresh data overtakes a recovery resend: 4 and 5 park until 1..3
	// arrive, then everything delivers in sequence order.
	q.enqueue(item(4))
	q.enqueue(item(5))
	if q.len() != 0 {
		t.Fatalf("out-of-order items delivered early: %d", q.len())
	}
	q.enqueue(item(1))
	q.enqueue(item(2))
	q.enqueue(item(3))
	got := drain(q)
	for i, seq := range []uint64{1, 2, 3, 4, 5} {
		if got[i] != seq {
			t.Fatalf("order = %v", got)
		}
	}
	if len(q.park) != 0 {
		t.Fatalf("park not drained: %d", len(q.park))
	}
}

func TestOrderedQueueDuplicateDrop(t *testing.T) {
	q := &upQueue{ordered: true}
	q.enqueue(item(1))
	q.enqueue(item(1))
	q.enqueue(item(2))
	q.enqueue(item(2))
	if got := drain(q); len(got) != 2 {
		t.Fatalf("delivered %v, want [1 2]", got)
	}
}

func TestOrderedQueueFlushValve(t *testing.T) {
	q := &upQueue{ordered: true}
	// An unfillable gap (seq 1 never arrives) must not deadlock: past
	// the park limit, parked items flush in order.
	for seq := uint64(2); seq <= uint64(parkLimit+3); seq++ {
		q.enqueue(item(seq))
	}
	got := drain(q)
	if len(got) == 0 {
		t.Fatal("valve never flushed")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("flush out of order at %d: %v...", i, got[:i+1])
		}
	}
	if q.lastEnq < uint64(parkLimit) {
		t.Fatalf("watermark did not advance: %d", q.lastEnq)
	}
}

func TestQueuePopCompaction(t *testing.T) {
	q := &upQueue{}
	for seq := uint64(1); seq <= 1000; seq++ {
		q.enqueue(item(seq))
	}
	for i := 0; i < 600; i++ {
		q.pop()
	}
	if q.len() != 400 {
		t.Fatalf("len = %d, want 400", q.len())
	}
	// Compaction must have reclaimed the consumed prefix.
	if q.head > 512 {
		t.Fatalf("head = %d, compaction never ran", q.head)
	}
	if got := q.pop().edgeSeq; got != 601 {
		t.Fatalf("next = %d, want 601", got)
	}
}

func TestCommandAndReportNames(t *testing.T) {
	if CmdToken.String() != "token" || CmdFetchRestore.String() != "fetch-restore" {
		t.Fatal("command names wrong")
	}
	if RepCheckpointed.String() != "checkpointed" || RepHandoffDone.String() != "handoff-done" {
		t.Fatal("report names wrong")
	}
	if CommandOp(99).String() != "cmd(?)" || ReportType(99).String() != "report(?)" {
		t.Fatal("unknown names wrong")
	}
}

// Property: an ordered queue delivers exactly the set {1..n} in order for
// any arrival permutation (no gaps, duplicates injected freely).
func TestOrderedQueuePermutationProperty(t *testing.T) {
	f := func(permSeed uint32, n uint8, dupEvery uint8) bool {
		k := int(n%64) + 1
		q := &upQueue{ordered: true}
		perm := make([]uint64, k)
		for i := range perm {
			perm[i] = uint64(i + 1)
		}
		s := permSeed
		for i := k - 1; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s % uint32(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i, seq := range perm {
			q.enqueue(item(seq))
			if dupEvery > 0 && i%int(dupEvery+1) == 0 {
				q.enqueue(item(seq)) // duplicate injection
			}
		}
		got := drain(q)
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i] != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
