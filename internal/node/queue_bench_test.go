package node

import "testing"

// BenchmarkUpQueueEnqueueUnordered measures the unordered (dedup-window)
// enqueue path. With the window map and ring allocated at construction the
// steady state must not allocate per enqueue.
func BenchmarkUpQueueEnqueueUnordered(b *testing.B) {
	q := newStreamQueue(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.enqueue(queued{edgeSeq: uint64(i + 1)}) {
			b.Fatal("fresh sequence rejected")
		}
		q.pop()
	}
}

// BenchmarkUpQueueEnqueueUnorderedDup measures duplicate suppression inside
// the dedup window: every second enqueue is a repeat of the previous
// sequence and must be dropped without touching the ring.
func BenchmarkUpQueueEnqueueUnorderedDup(b *testing.B) {
	q := newStreamQueue(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := uint64(i/2 + 1)
		accepted := q.enqueue(queued{edgeSeq: seq})
		if accepted != (i%2 == 0) {
			b.Fatalf("enqueue %d (seq %d) accepted=%v", i, seq, accepted)
		}
		if accepted {
			q.pop()
		}
	}
}

// BenchmarkUpQueueEnqueueOrdered measures the in-order (edge-preserving)
// enqueue path: watermark advance plus FIFO push, no park traffic.
func BenchmarkUpQueueEnqueueOrdered(b *testing.B) {
	q := newStreamQueue(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !q.enqueue(queued{edgeSeq: uint64(i + 1)}) {
			b.Fatal("in-order sequence rejected")
		}
		q.pop()
	}
}

// BenchmarkUpQueueEnqueueOrderedGap measures the park/heal path: arrivals
// alternate one ahead of the watermark, so every odd enqueue parks and the
// following one heals the gap, popping both.
func BenchmarkUpQueueEnqueueOrderedGap(b *testing.B) {
	q := newStreamQueue(true)
	b.ReportAllocs()
	b.ResetTimer()
	next := uint64(1)
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			q.enqueue(queued{edgeSeq: next + 1}) // parks above the gap
			continue
		}
		if !q.enqueue(queued{edgeSeq: next}) { // heals it, releasing both
			b.Fatal("gap fill rejected")
		}
		q.pop()
		q.pop()
		next += 2
	}
}
