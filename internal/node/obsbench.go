package node

import (
	"runtime"
	"time"

	"mobistreams/internal/obs"
	"mobistreams/internal/tuple"
)

// ObsBenchResult quantifies what observability costs on the emit hot path,
// measured on the same compiled chain as RunEmitBench in three modes:
// no registry at all, registry attached with sampling off (the production
// steady state), and every tuple traced (the worst case).
type ObsBenchResult struct {
	Iters int
	// OffNsPerOp / HistNsPerOp / TraceNsPerOp are per-tuple latencies for
	// the three modes.
	OffNsPerOp   float64
	HistNsPerOp  float64
	TraceNsPerOp float64
	// HistAllocsPerOp is the sampling-off allocation count — the PR 4/5
	// zero-allocs invariant with instrumentation compiled in; the gate
	// pins it at 0.
	HistAllocsPerOp float64
	// TraceAllocsPerOp is the every-tuple-traced allocation count
	// (span recording allocates; reported, not pinned).
	TraceAllocsPerOp float64
	// OverheadPct is (hist - off) / off * 100: the always-on histogram
	// tax relative to the uninstrumented path.
	OverheadPct float64
	// Spans is the number of spans the traced mode recorded (bounded by
	// the tracer's buffer; overflow counts as drops, not allocations).
	Spans int
}

// obsBenchMode drives iters tuples through the compiled chain under one
// observability mode and reports per-op latency and allocations.
func obsBenchMode(reg *obs.Registry, traceEvery, iters int) (nsPerOp, allocsPerOp float64) {
	n := emitBenchNode(false, reg, func(*tuple.Tuple) {})
	if reg != nil {
		reg.Tracer.SetSampleEvery(traceEvery)
	}
	p := n.pipe.Load()
	idx := p.opIndex("src")
	t := &tuple.Tuple{Seq: 1, Size: 64, Value: 1.0}
	for i := 0; i < 128; i++ {
		n.runOp(p, idx, "", t)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m0 := ms.Mallocs
	start := time.Now()
	for i := 0; i < iters; i++ {
		if traceEvery > 0 {
			// The executor stamps the ambient trace context per dequeued
			// item; the bench replicates that handshake.
			if tc, ok := n.tracer.Sample(uint64(i)); ok {
				n.curTrace = tc
			} else {
				n.curTrace = obs.SpanCtx{}
			}
		}
		n.runOp(p, idx, "", t)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	n.curTrace = obs.SpanCtx{}
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(ms.Mallocs-m0) / float64(iters)
}

// RunObsBench measures the instrumentation overhead the observability
// layer adds to the tuple hot path. Exported for the msbench obs
// experiment and its regression gate.
func RunObsBench(iters int) ObsBenchResult {
	if iters <= 0 {
		iters = 200000
	}
	res := ObsBenchResult{Iters: iters}
	res.OffNsPerOp, _ = obsBenchMode(nil, 0, iters)
	histReg := obs.NewRegistry()
	res.HistNsPerOp, res.HistAllocsPerOp = obsBenchMode(histReg, 0, iters)
	traceReg := obs.NewRegistry()
	res.TraceNsPerOp, res.TraceAllocsPerOp = obsBenchMode(traceReg, 1, iters)
	res.Spans = len(traceReg.Tracer.Spans())
	if res.OffNsPerOp > 0 {
		res.OverheadPct = (res.HistNsPerOp - res.OffNsPerOp) / res.OffNsPerOp * 100
	}
	return res
}
