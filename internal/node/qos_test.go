package node

import (
	"testing"
	"time"

	"mobistreams/internal/graph"
)

// TestQoSZeroIsLegacyBatching is the compatibility regression: a zero QoS
// must leave old-style BatchConfig behavior untouched — same merged
// bounds, the fixed legacy flush interval, and no deadline adaptation.
func TestQoSZeroIsLegacyBatching(t *testing.T) {
	legacy := BatchConfig{MaxMsgs: 7, MaxBytes: 1234, FlushInterval: 9 * time.Millisecond}
	var q QoS
	if got := q.mergeBatch(legacy); got != legacy {
		t.Fatalf("zero QoS changed legacy config: %+v", got)
	}
	b := newBatcher(nil, q.mergeBatch(legacy))
	if got := b.flushInterval(); got != legacy.FlushInterval {
		t.Fatalf("flushInterval = %v, want legacy %v", got, legacy.FlushInterval)
	}
	b.noteSizeFlush()
	b.noteLatencyFlush(0)
	if got := b.flushInterval(); got != legacy.FlushInterval {
		t.Fatalf("flushInterval moved to %v with QoS off", got)
	}
}

func TestQoSMergeOverridesLegacyBounds(t *testing.T) {
	legacy := BatchConfig{MaxMsgs: 32, MaxBytes: 64 << 10, FlushInterval: 20 * time.Millisecond}
	q := QoS{MaxBatchMsgs: 8, MaxBatchBytes: 4096, DisableBatching: true}
	got := q.mergeBatch(legacy)
	if got.MaxMsgs != 8 || got.MaxBytes != 4096 || !got.Disable {
		t.Fatalf("merged = %+v", got)
	}
	if got.FlushInterval != legacy.FlushInterval {
		t.Fatalf("merge touched FlushInterval: %v", got.FlushInterval)
	}
}

func TestAdaptiveDeadlineTracksFlushCauses(t *testing.T) {
	b := newBatcher(nil, BatchConfig{MaxMsgs: 32})
	b.setBudget(100*time.Millisecond, time.Millisecond)
	if got := b.flushInterval(); got != 100*time.Millisecond {
		t.Fatalf("initial deadline = %v, want the full budget share", got)
	}
	// Latency-triggered flushes carrying nearly-empty batches shrink the
	// deadline toward the floor.
	for i := 0; i < 100; i++ {
		b.noteLatencyFlush(1)
	}
	if got := b.flushInterval(); got != time.Millisecond {
		t.Fatalf("deadline after sustained empty flushes = %v, want the 1ms floor", got)
	}
	// A latency flush carrying at least half a batch is evidence the
	// deadline is about right: no movement.
	cur := b.flushInterval()
	b.noteLatencyFlush(16)
	if got := b.flushInterval(); got != cur {
		t.Fatalf("half-full latency flush moved deadline %v -> %v", cur, got)
	}
	// Size-triggered flushes grow it back toward the cap, never past it.
	for i := 0; i < 100; i++ {
		b.noteSizeFlush()
	}
	if got := b.flushInterval(); got != 100*time.Millisecond {
		t.Fatalf("deadline after sustained size flushes = %v, want the budget cap", got)
	}
}

func TestSlotHopsLongestPathToSink(t *testing.T) {
	var gb graph.Builder
	gb.AddOperator("A", "s1").AddOperator("B", "s2").AddOperator("C", "s3").AddOperator("D", "s4")
	gb.Connect("A", "B").Connect("B", "C").Connect("C", "D").Connect("A", "D")
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	for slot, want := range map[string]int{"s1": 3, "s2": 2, "s3": 1, "s4": 0} {
		if got := slotHops(g, slot); got != want {
			t.Fatalf("slotHops(%s) = %d, want %d", slot, got, want)
		}
	}
}
