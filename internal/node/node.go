// Package node implements the per-phone runtime: the dispatcher that sorts
// incoming network messages, the executor that processes tuples through the
// phone's operators with calibrated service times, token alignment and
// checkpointing, and the control handler for controller commands, recovery
// and mobility.
//
// Concurrency model: one dispatcher goroutine drains the endpoint inbox,
// one executor goroutine owns the operators and all stream state, one
// control goroutine serves commands and peer requests, and one persist
// goroutine disseminates checkpoint blobs so the executor never blocks on
// checkpoint I/O (the paper's asynchronous checkpointing, §III-B).
//
// The steady-state tuple path — queue pop, operator execution, fan-out,
// cross-slot send — runs against a compiled pipeline (see pipeline.go) and
// an epoch-stamped route cache (see routecache.go): after the single queue
// handshake under n.mu, no lock is taken and no map is consulted until the
// emission reaches the batcher.
package node

import (
	"sync"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/checkpoint"
	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/keyed"
	"mobistreams/internal/metrics"
	"mobistreams/internal/obs"
	"mobistreams/internal/operator"
	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
	"mobistreams/internal/storage"
	"mobistreams/internal/tuple"
)

// Role is a node's current function in the region.
type Role int

const (
	// RolePrimary runs operators and emits output.
	RolePrimary Role = iota
	// RoleStandby runs operators but suppresses output (rep-2 replica).
	RoleStandby
	// RoleIdle runs no operators; it stores checkpoint data and stands
	// by as a replacement (node F in Fig. 4).
	RoleIdle
)

// Resolver maps slots to the phones currently hosting them. The region
// owns the placement and updates it during recovery and mobility; nodes
// resolve on every send (through the epoch-stamped route cache when the
// resolver also implements EpochResolver).
type Resolver interface {
	Primary(slot string) (simnet.NodeID, bool)
	Standby(slot string) (simnet.NodeID, bool)
}

// Config assembles a node.
type Config struct {
	// ID is the node's network identity; defaults to Phone.ID. A rep-2
	// standby has its own identity on a shared physical phone.
	ID       simnet.NodeID
	Phone    *phone.Phone
	Slot     string // "" for idle nodes
	Role     Role
	Registry operator.Registry
	OpIDs    []string // operators on this slot, topological order
	Graph    *graph.Graph
	Scheme   ft.Scheme
	Clock    clock.Clock
	WiFi     *simnet.WiFi
	Cell     *simnet.Cellular
	Endpoint *simnet.Endpoint
	Store    *storage.Store
	Resolver Resolver
	// NoRouteCache disables the epoch-stamped Primary/Standby cache and
	// consults the Resolver on every send (the pre-cache behaviour).
	NoRouteCache bool
	// ControllerID is the controller's network identity for reports.
	ControllerID simnet.NodeID
	// Peers returns the current region members (minus this phone) for
	// broadcast dissemination queries.
	Peers func() []simnet.NodeID
	// DistPeers are the unicast persistence targets under dist-n.
	DistPeers []simnet.NodeID
	// Broadcast configures the dissemination protocol.
	Broadcast broadcast.Config
	// PreserveBroadcast replicates admitted source input to all peers
	// (UDP best-effort) so replay logs survive source failures.
	PreserveBroadcast bool
	// Keyed maps each keyed group's logical operator ID to the region's
	// shared partition-table group. Compiled pipelines dispatch keyed
	// emissions through it; a control-plane table install flips routing
	// on every node at once.
	Keyed map[string]*keyed.Group
	// Batch bounds edge-level tuple batching on the emission hot path.
	//
	// Deprecated: prefer the consolidated QoS knobs; Batch remains for
	// compatibility and is overridden field-by-field by QoS.
	Batch BatchConfig
	// QoS consolidates the output-path quality-of-service knobs: the
	// end-to-end latency budget driving adaptive flush deadlines, and the
	// batch bounds that supersede the legacy Batch fields.
	QoS QoS
	// BatchStats, when non-nil, accumulates per-flush batch sizes.
	BatchStats *metrics.BatchSizes
	// Checkpoint configures the snapshot pipeline (incremental-async by
	// default; FullOnly restores synchronous full-blob checkpointing).
	Checkpoint CheckpointConfig
	// CkptStats, when non-nil, accumulates checkpoint pause and blob-size
	// observations.
	CkptStats *metrics.CheckpointStats
	// Obs, when non-nil, wires the node into the region's observability
	// registry: per-operator latency and per-edge wait/depth histograms
	// (resolved into the compiled pipeline — the hot path holds plain
	// pointers), the tuple tracer, and the lifecycle journal. Nil keeps
	// every instrumentation site a single nil check.
	Obs *obs.Registry
	// OnSinkOutput receives externally published results.
	OnSinkOutput func(*tuple.Tuple)
	// OnIngest admits an inter-region tuple arriving over cellular into
	// the region (set by the region to its Ingest method).
	OnIngest func(srcOp string, value interface{}, size int, kind string)
	// Logf receives debug logging; nil disables.
	Logf func(string, ...interface{})
}

// queued is one item waiting on an upstream queue. tc carries the tuple's
// sampled trace context (zero = untraced); at is the enqueue timestamp —
// it feeds the edge's queue-wait histogram and anchors the executor's CPU
// reservation for the item (zero on paths that don't stamp it, e.g. replay,
// where the reservation falls back to the executor's wake time).
type queued struct {
	fromOp  string
	toOp    string
	edgeSeq uint64
	item    tuple.Item
	tc      obs.SpanCtx
	at      time.Duration
}

// upQueue is the FIFO from one upstream slot (or the external world).
//
// Under edge-preserving schemes (local/dist-n) the queue delivers strictly
// in edge-sequence order: recovery resends must not be overtaken by fresh
// emissions, so out-of-order arrivals park until the gap fills. The park
// has an overflow valve — an unfillable gap (edge log lost to a second
// failure) degrades to tuple loss rather than deadlock.
//
// Unordered queues (schemes without edge preservation) only suppress
// duplicates, within a bounded window of recently seen sequences: a late
// arrival that simply overtook its neighbours on the network is still
// legitimate input and must not be dropped.
type upQueue struct {
	items   []queued
	head    int
	stalled bool
	lastEnq uint64
	ordered bool
	// park is a min-heap on edgeSeq of out-of-order arrivals waiting for
	// their gap to fill; parked tracks membership for duplicate drops.
	park   []queued
	parked map[uint64]struct{}
	// recent is the unordered queues' dedup window: the last dedupWindow
	// sequences accepted, evicted FIFO through recentRing. Allocated once
	// at construction (newStreamQueue) so the enqueue path never pays a
	// nil check or a map grow.
	recent     map[uint64]struct{}
	recentRing []uint64
	recentPos  int
	// depth is the edge's queue-depth histogram (nil when obs is off),
	// observed after each accepted enqueue.
	depth *obs.Histogram
}

// newStreamQueue builds an upstream stream queue with its dedup window
// pre-allocated (unordered queues only; ordered queues dedup by watermark
// and park membership instead).
func newStreamQueue(ordered bool) *upQueue {
	q := &upQueue{ordered: ordered}
	if !ordered {
		q.recent = make(map[uint64]struct{}, dedupWindow)
		q.recentRing = make([]uint64, 0, dedupWindow)
	}
	return q
}

// parkLimit bounds out-of-order buffering before the gap is abandoned.
const parkLimit = 1024

// dedupWindow bounds how many recently accepted sequences an unordered
// queue remembers for duplicate suppression.
const dedupWindow = 1024

// enqueue applies the queue's ordering discipline to a sequenced arrival
// and reports whether anything became deliverable.
func (q *upQueue) enqueue(it queued) bool {
	if !q.ordered {
		if q.seenRecently(it.edgeSeq) {
			return false // duplicate
		}
		if it.edgeSeq > q.lastEnq {
			q.lastEnq = it.edgeSeq
		}
		q.push(it)
		return true
	}
	if it.edgeSeq <= q.lastEnq {
		return false // duplicate below the delivery watermark
	}
	if it.edgeSeq == q.lastEnq+1 {
		q.lastEnq = it.edgeSeq
		q.push(it)
		for len(q.park) > 0 && q.park[0].edgeSeq == q.lastEnq+1 {
			q.lastEnq++
			q.push(q.parkPop())
		}
		return true
	}
	if _, dup := q.parked[it.edgeSeq]; dup {
		return false
	}
	q.parkPush(it)
	if len(q.park) > parkLimit {
		q.flushPark()
		return true
	}
	return false
}

// seenRecently reports whether seq is inside the dedup window, recording it
// if not. The window is bounded: a duplicate arriving more than dedupWindow
// accepted sequences later slips through and is caught by sink-side dedup.
// The map and ring are allocated once at construction.
func (q *upQueue) seenRecently(seq uint64) bool {
	if _, ok := q.recent[seq]; ok {
		return true
	}
	if len(q.recentRing) < dedupWindow {
		q.recentRing = append(q.recentRing, seq)
	} else {
		delete(q.recent, q.recentRing[q.recentPos])
		q.recentRing[q.recentPos] = seq
		q.recentPos = (q.recentPos + 1) % dedupWindow
	}
	q.recent[seq] = struct{}{}
	return false
}

// parkPush inserts an out-of-order arrival into the park heap.
func (q *upQueue) parkPush(it queued) {
	if q.parked == nil {
		q.parked = make(map[uint64]struct{})
	}
	q.parked[it.edgeSeq] = struct{}{}
	q.park = append(q.park, it)
	for i := len(q.park) - 1; i > 0; {
		p := (i - 1) / 2
		if q.park[p].edgeSeq <= q.park[i].edgeSeq {
			break
		}
		q.park[p], q.park[i] = q.park[i], q.park[p]
		i = p
	}
}

// parkPop removes and returns the lowest-sequence parked item.
func (q *upQueue) parkPop() queued {
	top := q.park[0]
	delete(q.parked, top.edgeSeq)
	last := len(q.park) - 1
	q.park[0] = q.park[last]
	q.park[last] = queued{}
	q.park = q.park[:last]
	for i := 0; ; {
		s := i
		if l := 2*i + 1; l < len(q.park) && q.park[l].edgeSeq < q.park[s].edgeSeq {
			s = l
		}
		if r := 2*i + 2; r < len(q.park) && q.park[r].edgeSeq < q.park[s].edgeSeq {
			s = r
		}
		if s == i {
			break
		}
		q.park[i], q.park[s] = q.park[s], q.park[i]
		i = s
	}
	return top
}

// flushPark abandons an unfillable gap: parked items are delivered in
// sequence order and the watermark jumps past them. Heap pops make the
// whole flush O(n log n) in the park size.
func (q *upQueue) flushPark() {
	for len(q.park) > 0 {
		it := q.parkPop()
		q.lastEnq = it.edgeSeq
		q.push(it)
	}
}

func (q *upQueue) len() int { return len(q.items) - q.head }

func (q *upQueue) push(it queued) { q.items = append(q.items, it) }

func (q *upQueue) pop() queued {
	it := q.items[q.head]
	q.items[q.head] = queued{}
	q.head++
	if q.head > 256 && q.head*2 >= len(q.items) {
		// Compact in place: slide the live suffix down and truncate, so
		// the drain path reuses one backing array instead of allocating.
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = queued{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return it
}

// reset drops the queue's contents, keeping its pre-allocated dedup window
// (cleared, not reallocated) so restores do not reintroduce the per-enqueue
// allocation the constructor eliminated.
func (q *upQueue) reset() {
	q.items = nil
	q.head = 0
	q.stalled = false
	q.park = nil
	q.parked = nil
	if q.recent != nil {
		clear(q.recent)
		q.recentRing = q.recentRing[:0]
	}
	q.recentPos = 0
}

// execCmd is a high-priority executor command.
type execCmd struct {
	snapshot uint64 // snapshot now at this version (local/dist-n)
	resendTo string // downstream slot to resend retained output to
	after    uint64
}

// Node is one phone's runtime.
type Node struct {
	cfg   Config
	id    simnet.NodeID
	clk   clock.Clock
	logf  func(string, ...interface{})
	bcfg  broadcast.Config
	recv  *broadcast.Receiver
	graph *graph.Graph

	// pipe is the compiled data plane for the hosted slot (nil when
	// idle), swapped atomically on configuration, restore and handoff.
	pipe atomic.Pointer[pipeline]
	// routes is the epoch-stamped Primary/Standby cache (routecache.go).
	routes   atomic.Pointer[routeSnapshot]
	epochRes EpochResolver // non-nil when the resolver supports epochs

	// role and suppress gate emission on the lock-free output path.
	role     atomic.Int32
	suppress atomic.Bool

	mu         sync.Mutex
	cond       *sync.Cond
	running    bool
	paused     bool
	execParked bool
	failed     bool
	slot       string
	opIDs      []string
	queues     map[string]*upQueue
	qOrder     []string
	rr         int
	cmds       []execCmd

	align          *checkpoint.Alignment
	alignUpstreams []string
	replaySeen     map[uint64]map[string]bool
	logVersion     atomic.Uint64
	hwAt           map[uint64]map[string]uint64
	isSource       bool
	isSink         bool
	sourceOps      []string

	unreachable     map[simnet.NodeID]bool
	urgentReported  map[string]bool
	chronicReported bool
	// timerArmed/timerWakeAt track the earliest outstanding timer-wake
	// goroutine that unparks the executor for a pending operator timer
	// (under mu); an earlier registration re-arms with its own wake.
	timerArmed  bool
	timerWakeAt time.Duration
	// sendGen invalidates in-flight deliveries across a restore: output
	// emitted before a rewind must not land after it (the rewound outSeq
	// reuses those edge sequences, and a late stale delivery would poison
	// the receiver's dedup state against the re-emissions). Read
	// atomically by retry loops; bumped under mu by installBlobLocked.
	sendGen uint64
	// dropStream discards stream arrivals between a controller-driven
	// restore and the matching resume. During region-wide recovery every
	// sender is paused, so nothing legitimate flows in that window — only
	// stale pre-failure messages from peers that have not yet restored
	// (and thus not yet aborted their own in-flight retries), which would
	// poison the freshly reset dedup state.
	dropStream bool
	extFwdSeq  atomic.Uint64
	forwardTo  simnet.NodeID // post-handoff relay target (§III-E)
	preBuf     []StreamMsg   // stream arrivals before activation
	// processed counts executed data tuples (telemetry: the scheduler's
	// per-slot tuple rate). Read atomically off the executor.
	processed uint64
	// keyRangeGen counts completed key-range imports (split/merge state
	// arrivals); the region polls it to detect that a shipped range has
	// landed before flipping the partition table.
	keyRangeGen atomic.Uint64

	// obsReg/tracer/journal mirror cfg.Obs (all nil when obs is off).
	// curTrace is the trace context of the tuple the executor is
	// currently processing — executor-owned ambient state, so the
	// compiled emit path picks it up without threading a parameter
	// through the operator contract. Zero between tuples.
	obsReg   *obs.Registry
	tracer   *obs.Tracer
	journal  *obs.Journal
	curTrace obs.SpanCtx

	// curReady is the enqueue time of the tuple the executor is currently
	// processing — ambient like curTrace, consumed by runOp to anchor CPU
	// reservations (Phone.ExecFrom) at the moment the work became runnable
	// rather than at the executor's wake time. Zero between tuples.
	curReady time.Duration

	// ckptBase is the version the next delta checkpoint patches against
	// (0 = none: first checkpoint, or freshly restored); ckptChainLen
	// counts the delta links since the last full base blob. Written by
	// the executor's checkpoint path and installBlobLocked under mu.
	ckptBase     uint64
	ckptChainLen int

	batch *batcher

	ctrl      chan simnet.Message
	persistCh chan *checkpoint.Blob
	stopCh    chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// runtimeState is the executor bookkeeping carried inside checkpoints so a
// restored node resumes with consistent edge sequences.
type runtimeState struct {
	OutSeq     map[string]uint64
	InHW       map[string]uint64
	LogVersion uint64
}

// New assembles a node; Start launches it.
func New(cfg Config) *Node {
	id := cfg.ID
	if id == "" {
		id = cfg.Phone.ID
	}
	n := &Node{
		cfg:            cfg,
		id:             id,
		clk:            cfg.Clock,
		bcfg:           cfg.Broadcast,
		graph:          cfg.Graph,
		recv:           broadcast.NewReceiver(cfg.Store),
		queues:         make(map[string]*upQueue),
		replaySeen:     make(map[uint64]map[string]bool),
		hwAt:           make(map[uint64]map[string]uint64),
		unreachable:    make(map[simnet.NodeID]bool),
		urgentReported: make(map[string]bool),
		persistCh:      make(chan *checkpoint.Blob, 64),
		stopCh:         make(chan struct{}),
	}
	n.role.Store(int32(cfg.Role))
	if cfg.Obs != nil {
		n.obsReg = cfg.Obs
		n.tracer = cfg.Obs.Tracer
		n.journal = cfg.Obs.Journal
	}
	if !cfg.NoRouteCache {
		if er, ok := cfg.Resolver.(EpochResolver); ok {
			n.epochRes = er
		}
	}
	n.cond = sync.NewCond(&n.mu)
	n.batch = newBatcher(n, cfg.QoS.mergeBatch(cfg.Batch))
	n.logf = cfg.Logf
	if n.logf == nil {
		n.logf = func(string, ...interface{}) {}
	}
	if cfg.Slot != "" {
		n.configureSlot(cfg.Slot, cfg.OpIDs)
	}
	return n
}

// configureSlot installs the slot's operators and queue topology, compiling
// the slot's pipeline and swapping it in atomically. Callers hold no lock
// (construction) or n.mu (activation of an idle node).
func (n *Node) configureSlot(slot string, opIDs []string) {
	n.slot = slot
	// A node that previously handed a slot off and returned to the idle
	// pool carries a stale relay target; hosting again must drop it, or
	// pre-activation arrivals get relayed to the old slot's home instead
	// of buffering in preBuf.
	n.forwardTo = ""
	n.opIDs = append([]string(nil), opIDs...)
	ops := make([]operator.Operator, 0, len(opIDs))
	for _, id := range opIDs {
		ops = append(ops, n.cfg.Registry.New(id))
	}
	p := n.compilePipeline(slot, n.opIDs, ops)
	n.queues = make(map[string]*upQueue)
	n.qOrder = nil
	ordered := n.cfg.Scheme.PreservesAtEdges()
	for _, up := range p.upstreams {
		if up == externalSlot || up == rerouteSlot {
			// Pseudo-upstreams bypass edge-sequence dedup: items are
			// pushed directly, never enqueue()d.
			n.queues[up] = &upQueue{}
		} else {
			n.queues[up] = newStreamQueue(ordered)
		}
		if n.cfg.Obs != nil {
			n.queues[up].depth = n.cfg.Obs.EdgeDepth(up + "->" + slot)
		}
		n.qOrder = append(n.qOrder, up)
	}
	n.isSource, n.isSink = p.isSource, p.isSink
	n.sourceOps = append([]string(nil), p.sourceOps...)
	// Alignment excludes the reroute pseudo-upstream: no token ever
	// arrives on it, so counting it would stall every checkpoint round.
	n.alignUpstreams = make([]string, 0, len(p.upstreams))
	for _, up := range p.upstreams {
		if up != rerouteSlot {
			n.alignUpstreams = append(n.alignUpstreams, up)
		}
	}
	n.align = checkpoint.NewAlignment(n.alignUpstreams)
	n.batch.setBudget(n.slotBudgetShare(slot), n.cfg.QoS.minFlush())
	n.pipe.Store(p)
}

// ID returns the phone's network identity.
func (n *Node) ID() simnet.NodeID { return n.id }

// Slot returns the slot the node currently hosts ("" when idle).
func (n *Node) Slot() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slot
}

// Role returns the node's current role.
func (n *Node) Role() Role { return Role(n.role.Load()) }

// Backlog reports the queued-but-unprocessed stream items across all
// upstream queues, including parked out-of-order arrivals (telemetry).
func (n *Node) Backlog() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, q := range n.queues {
		total += q.len() + len(q.park)
	}
	return total
}

// Processed reports the cumulative count of executed data tuples.
func (n *Node) Processed() uint64 { return atomic.LoadUint64(&n.processed) }

// Start launches the node's goroutines.
func (n *Node) Start() {
	n.mu.Lock()
	n.running = true
	n.mu.Unlock()
	n.wg.Add(3)
	go n.dispatchLoop()
	go n.controlLoop()
	go n.execLoop()
	if n.cfg.Scheme.Checkpoints() {
		n.wg.Add(1)
		go n.persistLoop()
	}
	if !n.batch.cfg.Disable {
		n.wg.Add(1)
		go n.flushLoop()
	}
}

// Stop shuts the node down gracefully and waits for its goroutines.
func (n *Node) Stop() {
	n.shutdown(false)
	n.wg.Wait()
	// With every loop stopped, deliver the emissions still waiting on
	// the latency bound: the unbatched path sent each emission before
	// returning, and a graceful stop keeps that guarantee. (A crash
	// goes through Fail, which rightly loses them.)
	n.batch.flushAll()
}

// Fail crashes the phone: goroutines stop, the endpoint is sealed, local
// storage is lost. It does not wait: a crash is not graceful.
func (n *Node) Fail() {
	n.cfg.Phone.Kill()
	n.cfg.Store.MarkLost()
	n.cfg.Endpoint.Seal()
	n.shutdown(true)
}

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

func (n *Node) shutdown(failed bool) {
	n.mu.Lock()
	n.running = false
	if failed {
		n.failed = true
	}
	n.mu.Unlock()
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.cond.Broadcast()
}

// IngestExternal admits one externally sensed tuple on a source operator.
// The workload driver calls this on the phone currently hosting the source.
// A node that has handed its slot off relays the tuple to the replacement:
// the region's placement map repoints only after the transfer lands, and
// external input admitted in that window must reach the new home rather
// than be dropped.
func (n *Node) IngestExternal(srcOp string, t *tuple.Tuple) {
	n.IngestExternalTraced(srcOp, t, obs.SpanCtx{})
}

// IngestExternalTraced is IngestExternal carrying a sampled trace context
// (zero = untraced). The region's ingest path records the ingest span and
// passes the context here; it rides the queued item to the executor.
func (n *Node) IngestExternalTraced(srcOp string, t *tuple.Tuple, tc obs.SpanCtx) {
	n.mu.Lock()
	q, ok := n.queues[externalSlot]
	if !ok || !n.running {
		fwd := n.forwardTo
		running := n.running
		n.mu.Unlock()
		if running && fwd != "" {
			m := StreamMsg{FromSlot: externalSlot, ToOp: srcOp, EdgeSeq: t.Seq, Trace: tc, Item: tuple.DataItem(t)}
			n.relay(fwd, simnet.ClassData, t.Size, m)
		}
		return
	}
	q.push(queued{fromOp: "", toOp: srcOp, item: tuple.DataItem(t), tc: tc, at: n.clk.Now()})
	if q.depth != nil {
		q.depth.Observe(int64(q.len()))
	}
	n.cond.Signal()
	n.mu.Unlock()
}

// relay ships a payload to a peer over the region WiFi, detouring over
// cellular when the medium fails (a departed sender's WiFi attempt fails
// instantly, so this covers both in-range and out-of-range senders),
// charging transmit energy exactly when a send succeeds. Used by the
// post-handoff straggler forwarding paths and the handoff transfer itself.
func (n *Node) relay(to simnet.NodeID, class simnet.Class, size int, payload interface{}) bool {
	if err := n.cfg.WiFi.Unicast(n.id, to, class, size, payload); err == nil {
		n.cfg.Phone.DrainTx(size)
		return true
	}
	if n.cfg.Cell != nil {
		if err := n.cfg.Cell.Send(n.id, to, class, size, payload); err == nil {
			n.cfg.Phone.DrainTx(size)
			return true
		}
	}
	n.logf("%s: relay of %d bytes to %s failed on both media", n.id, size, to)
	return false
}

// enqueueStream delivers a cross-slot stream message into its upstream
// queue, suppressing duplicates below the edge-sequence watermark. A node
// that has handed its slot off relays stragglers to the replacement.
func (n *Node) enqueueStream(m StreamMsg) {
	n.mu.Lock()
	if n.dropStream {
		n.mu.Unlock()
		return
	}
	q, ok := n.queues[m.FromSlot]
	if !ok {
		fwd := n.forwardTo
		if fwd == "" && n.slot == "" {
			// Not yet hosting a slot: an incoming replacement buffers
			// early arrivals until its state transfer installs.
			if len(n.preBuf) < 4096 {
				n.preBuf = append(n.preBuf, m)
			}
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		if fwd != "" {
			n.relay(fwd, simnet.ClassData, m.Item.WireSize(), m)
			return
		}
		n.logf("%s: stream from unexpected slot %s", n.id, m.FromSlot)
		return
	}
	defer n.mu.Unlock()
	qit := queued{fromOp: m.FromOp, toOp: m.ToOp, edgeSeq: m.EdgeSeq, item: m.Item, tc: m.Trace, at: n.clk.Now()}
	if n.obsReg != nil && qit.tc.ID != 0 {
		n.tracer.Record(&qit.tc, obs.SpanRecv, string(n.id), m.ToSlot, m.ToOp, int64(qit.at))
	}
	if m.FromSlot == externalSlot || m.FromSlot == rerouteSlot {
		// Relayed external input from a node that handed this slot off, or
		// a tuple rerouted by a keyed peer that no longer owns its key.
		// Both are admitted exactly once upstream (each relay is one
		// reliable unicast), so they bypass edge-sequence dedup — they
		// carry no per-edge sequence.
		qit.edgeSeq = 0
		q.push(qit)
		if q.depth != nil {
			q.depth.Observe(int64(q.len()))
		}
		n.cond.Signal()
		return
	}
	// A traced arrival about to park (out of order on an ordered queue)
	// records its park span before the queue copies it into the heap.
	if qit.tc.ID != 0 && q.ordered && qit.edgeSeq > q.lastEnq+1 {
		if _, dup := q.parked[qit.edgeSeq]; !dup {
			n.tracer.Record(&qit.tc, obs.SpanPark, string(n.id), m.ToSlot, m.ToOp, int64(qit.at))
		}
	}
	if q.enqueue(qit) {
		if q.depth != nil {
			q.depth.Observe(int64(q.len()))
		}
		n.cond.Signal()
	}
}

// enqueueStreamBatch unbatches a coalesced delivery into its upstream
// queues under one lock acquisition — the receive half of edge batching.
// The relay and pre-activation cases mirror enqueueStream, acting on the
// batch as a whole (every message in a batch shares one origin slot).
func (n *Node) enqueueStreamBatch(bm BatchMsg) {
	if len(bm.Msgs) == 0 {
		return
	}
	n.mu.Lock()
	if n.dropStream {
		n.mu.Unlock()
		recycleBatchSlice(bm.Msgs)
		return
	}
	if _, ok := n.queues[bm.Msgs[0].FromSlot]; !ok {
		fwd := n.forwardTo
		if fwd == "" && n.slot == "" {
			for _, m := range bm.Msgs {
				if len(n.preBuf) < 4096 {
					n.preBuf = append(n.preBuf, m)
				}
			}
			n.mu.Unlock()
			recycleBatchSlice(bm.Msgs)
			return
		}
		n.mu.Unlock()
		if fwd != "" {
			n.relay(fwd, simnet.ClassData, bm.WireSize(), bm)
			return
		}
		n.logf("%s: stream batch from unexpected slot %s", n.id, bm.Msgs[0].FromSlot)
		return
	}
	var at time.Duration
	if n.obsReg != nil {
		at = n.clk.Now()
	}
	woke := false
	for i := range bm.Msgs {
		m := &bm.Msgs[i]
		q, ok := n.queues[m.FromSlot]
		if !ok {
			n.logf("%s: stream from unexpected slot %s", n.id, m.FromSlot)
			continue
		}
		qit := queued{fromOp: m.FromOp, toOp: m.ToOp, edgeSeq: m.EdgeSeq, item: m.Item, tc: m.Trace, at: at}
		if qit.tc.ID != 0 {
			n.tracer.Record(&qit.tc, obs.SpanRecv, string(n.id), m.ToSlot, m.ToOp, int64(at))
			if q.ordered && qit.edgeSeq > q.lastEnq+1 {
				if _, dup := q.parked[qit.edgeSeq]; !dup {
					n.tracer.Record(&qit.tc, obs.SpanPark, string(n.id), m.ToSlot, m.ToOp, int64(at))
				}
			}
		}
		if q.enqueue(qit) {
			if q.depth != nil {
				q.depth.Observe(int64(q.len()))
			}
			woke = true
		}
	}
	n.mu.Unlock()
	if woke {
		n.cond.Signal()
	}
	recycleBatchSlice(bm.Msgs)
}

// jot emits one lifecycle event to the region's journal. Nil-safe: with
// obs off the journal is nil and Emit is a no-op.
func (n *Node) jot(kind string, version uint64, detail string) {
	if n.journal == nil {
		return
	}
	slot := ""
	if p := n.pipe.Load(); p != nil {
		slot = p.slot
	}
	n.journal.Emit(obs.Event{
		At: int64(n.clk.Now()), Kind: kind, Node: string(n.id),
		Slot: slot, Version: version, Detail: detail,
	})
}

// injectCmd queues a high-priority executor command.
func (n *Node) injectCmd(c execCmd) {
	n.mu.Lock()
	n.cmds = append(n.cmds, c)
	n.mu.Unlock()
	n.cond.Signal()
}

// InjectToken makes a source slot admit a checkpoint token for version v
// at the next tuple boundary (controller notification, §III-B step 1).
func (n *Node) InjectToken(v uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	q, ok := n.queues[externalSlot]
	if !ok {
		return
	}
	q.push(queued{item: tuple.MarkerItem(tuple.Marker{Kind: tuple.MarkerToken, Version: v})})
	n.cond.Signal()
}

// execLoop is the executor: it owns the operators and all stream state.
func (n *Node) execLoop() {
	defer n.wg.Done()
	// firedLast alternates timer-vs-queue priority: due timers normally
	// preempt queued tuples (window closes must not starve behind a
	// saturated stream), but directly after a timer dispatch the queues
	// get one turn first, so an operator bug that re-arms an already-due
	// timer cannot starve tuple processing either.
	firedLast := false
	for {
		n.mu.Lock()
		var cmd *execCmd
		var from string
		var qi int
		var it queued
		var have bool
		var fireTimers bool
		for {
			if !n.running {
				n.mu.Unlock()
				return
			}
			if !n.paused {
				if len(n.cmds) > 0 {
					c := n.cmds[0]
					n.cmds = n.cmds[1:]
					cmd = &c
					break
				}
				// Due operator timers take priority over queued tuples
				// (except right after a timer dispatch, see firedLast):
				// a saturated stream must not starve window closes past
				// their boundary. Slots without pending timers pay one
				// slice-length check here — the clock is only read once
				// a timer is actually pending.
				timersDue := func() bool {
					p := n.pipe.Load()
					return p != nil && len(p.timers) > 0 && p.timerDue(n.clk.Now())
				}
				if !firedLast && timersDue() {
					fireTimers = true
					break
				}
				from, qi, it, have = n.nextItemLocked()
				if have {
					break
				}
				if firedLast && timersDue() {
					fireTimers = true
					break
				}
			}
			// Out of runnable work: opportunistically ship any partial
			// batches before parking, so a low-rate stream's delivery is
			// as prompt as the unbatched path instead of waiting on the
			// flush timer. Size- and marker-bound flushes already happen
			// inline; this covers the trickle case.
			if n.batch.pendingSlots() > 0 {
				n.mu.Unlock()
				n.batch.flushAll()
				n.mu.Lock()
				continue // arrivals during the flush re-enter the checks
			}
			// Parking with a pending timer: arm a wake goroutine for the
			// earliest deadline, so an idle stream still closes windows.
			// A newly registered timer earlier than the armed wake gets
			// its own goroutine — the stale later wake fires harmlessly.
			if !n.paused {
				if p := n.pipe.Load(); p != nil {
					if at, ok := p.nextTimerAt(); ok && (!n.timerArmed || at < n.timerWakeAt) {
						n.timerArmed = true
						n.timerWakeAt = at
						go n.wakeAtTimer(at)
					}
				}
			}
			n.execParked = true
			n.cond.Broadcast()
			n.cond.Wait()
		}
		n.execParked = false
		n.mu.Unlock()

		firedLast = fireTimers
		switch {
		case cmd != nil && cmd.resendTo != "":
			n.doResend(cmd.resendTo, cmd.after)
		case cmd != nil:
			n.doPeriodicSnapshot(cmd.snapshot)
		case fireTimers:
			if p := n.pipe.Load(); p != nil {
				n.fireDueTimers(p)
			}
		case have:
			if p := n.pipe.Load(); p != nil {
				n.handleItem(p, qi, from, it)
			}
		}
	}
}

// nextItemLocked round-robins across unstalled non-empty queues, returning
// the queue's name and its pipeline upstream index.
func (n *Node) nextItemLocked() (string, int, queued, bool) {
	for i := 0; i < len(n.qOrder); i++ {
		qi := (n.rr + i) % len(n.qOrder)
		name := n.qOrder[qi]
		q := n.queues[name]
		if q.stalled || q.len() == 0 {
			continue
		}
		n.rr = (n.rr + i + 1) % len(n.qOrder)
		return name, qi, q.pop(), true
	}
	return "", -1, queued{}, false
}

// handleItem processes one stream item (tuple or marker). The data path is
// lock-free: watermarks advance on the pipeline's atomic counters and the
// operator chain runs against the compiled routes.
func (n *Node) handleItem(p *pipeline, qi int, from string, it queued) {
	if it.item.Marker != nil {
		switch it.item.Marker.Kind {
		case tuple.MarkerToken:
			n.onToken(p, qi, from, it.item.Marker.Version, it.edgeSeq)
		case tuple.MarkerReplayEnd:
			n.onReplayEnd(from, it.item.Marker.Version)
		}
		return
	}
	t := it.item.Tuple
	atomic.AddUint64(&n.processed, 1)
	n.curReady = it.at
	if n.obsReg != nil {
		now := n.clk.Now()
		if h := p.edgeWait[qi]; h != nil && it.at > 0 {
			h.Observe(int64(now - it.at))
		}
		if it.tc.ID != 0 {
			n.curTrace = it.tc
			n.tracer.Record(&n.curTrace, obs.SpanDequeue, string(n.id), p.slot, it.toOp, int64(now))
		}
	}
	switch from {
	case externalSlot:
		n.preserveSourceInput(it.toOp, t)
		n.forwardExternalToStandby(p, it.toOp, t)
	case rerouteSlot:
		// Rerouted tuples carry no edge sequence; no watermark to advance.
	default:
		p.noteInHW(qi, it.edgeSeq)
	}
	// A keyed instance popping a tuple for a key range that moved away
	// (queued before the partition table flipped) relays it to the new
	// owner instead of running it — the split/merge exactly-once path.
	if p.keyedGroup != nil {
		if owner := p.keyedGroup.Owner(t.Kind); owner != p.keyedInst {
			n.rerouteToOwner(p, owner, t)
			n.curTrace = obs.SpanCtx{}
			n.curReady = 0
			return
		}
	}
	if idx := p.opIndex(it.toOp); idx >= 0 {
		n.runOp(p, idx, it.fromOp, t)
	} else {
		n.logf("%s: tuple for unknown operator %s", n.id, it.toOp)
	}
	n.curTrace = obs.SpanCtx{}
	n.curReady = 0
}

// forwardExternalToStandby duplicates externally admitted input to the
// slot's standby replica under rep-2, so both replicas build the same
// state. This is part of the replication network overhead (Fig. 10b).
func (n *Node) forwardExternalToStandby(p *pipeline, srcOp string, t *tuple.Tuple) {
	if !n.cfg.Scheme.Replicated() {
		return
	}
	if Role(n.role.Load()) != RolePrimary {
		return
	}
	seq := n.extFwdSeq.Add(1)
	standby, ok := n.resolveStandby(p.slot)
	if !ok {
		return
	}
	msg := StreamMsg{FromSlot: externalSlot, ToSlot: p.slot, ToOp: srcOp, EdgeSeq: seq, Item: tuple.DataItem(t)}
	if err := n.cfg.WiFi.Unicast(n.id, standby, simnet.ClassReplication, t.Size, msg); err == nil {
		n.cfg.Phone.DrainTx(t.Size)
	}
}

// preserveSourceInput implements source preservation (§III-B step 3): the
// admitted tuple joins the local replay log and, when configured, is
// replicated to every phone via one UDP broadcast airtime.
func (n *Node) preserveSourceInput(srcOp string, t *tuple.Tuple) {
	if !n.cfg.Scheme.PreservesAtSources() || t.Replay {
		return
	}
	v := n.logVersion.Load()
	n.cfg.Store.AppendSource(v, srcOp, t)
	// The log append hits local flash on the data path.
	n.clk.Sleep(n.cfg.Phone.FlashWriteTime(t.Size))
	if n.cfg.PreserveBroadcast {
		n.cfg.WiFi.Broadcast(n.id, simnet.ClassPreserve, t.Size, PreserveMsg{Version: v, Source: srcOp, T: t})
		n.cfg.Phone.DrainTx(t.Size)
	}
}

// runOp executes one operator on a tuple, charging its service time. The
// operator emits through its bound Context as it processes: in-slot
// targets recurse synchronously, cross-slot targets ride the region
// network, and sink operators publish externally (see opSink). Both
// contracts route identically — the emit-context path pushes straight
// into the compiled pipeline with zero per-tuple allocation, the legacy
// path replays its returned []Out through the same Context. No lock is
// taken and no map is consulted.
func (n *Node) runOp(p *pipeline, idx int, fromOp string, t *tuple.Tuple) {
	c := &p.ops[idx]
	if cost := c.op.Cost(t); cost > 0 {
		if !n.cfg.Phone.ExecFrom(n.clk, n.curReady, cost) {
			n.logf("%s: battery dead", n.id)
			n.Fail()
			return
		}
		n.maybeReportChronic()
	}
	if c.lat != nil {
		start := n.clk.Now()
		if n.curTrace.ID != 0 {
			n.tracer.Record(&n.curTrace, obs.SpanOp, string(n.id), p.slot, c.id, int64(start))
		}
		if err := c.proc(c.ctx, fromOp, t); err != nil {
			n.logf("%s: operator %s: %v", n.id, c.id, err)
		}
		c.lat.Observe(int64(n.clk.Now() - start))
		return
	}
	if err := c.proc(c.ctx, fromOp, t); err != nil {
		n.logf("%s: operator %s: %v", n.id, c.id, err)
	}
}

// fireDueTimers runs the pending operator timers whose simulated-time
// deadline has passed, on the executor at a tuple boundary. Emissions from
// OnTimer flow through the operator's Context exactly like Process
// emissions. The drain is bounded to the timers pending at entry: a timer
// an OnTimer handler re-registers with an already-due deadline waits for
// the next boundary instead of spinning this one forever.
func (n *Node) fireDueTimers(p *pipeline) {
	now := n.clk.Now()
	for pending := len(p.timers); pending > 0; pending-- {
		tm, ok := p.popDueTimer(now)
		if !ok {
			return
		}
		c := &p.ops[tm.op]
		if c.timer == nil {
			continue
		}
		if err := c.timer.OnTimer(c.ctx, tm.at); err != nil {
			n.logf("%s: operator %s timer: %v", n.id, c.id, err)
		}
	}
}

// wakeAtTimer unparks the executor when the earliest pending operator
// timer comes due, so windows close on time on an otherwise idle stream.
// Only the wake matching the currently tracked deadline clears the armed
// flag; superseded later wakes just broadcast harmlessly.
func (n *Node) wakeAtTimer(at time.Duration) {
	if d := at - n.clk.Now(); d > 0 {
		select {
		case <-n.clk.After(d):
		case <-n.stopCh:
		}
	}
	n.mu.Lock()
	if n.timerArmed && n.timerWakeAt == at {
		n.timerArmed = false
	}
	n.mu.Unlock()
	n.cond.Broadcast()
}

// followRoute delivers one emission along a compiled route.
func (n *Node) followRoute(p *pipeline, fromOp string, r route, t *tuple.Tuple) {
	if r.local >= 0 {
		n.runOp(p, r.local, fromOp, t)
		return
	}
	n.sendCross(p, r.down, r.toOp, fromOp, tuple.DataItem(t))
}

func (n *Node) maybeReportChronic() {
	if n.chronicReported || !n.cfg.Phone.BatteryChronic() {
		return
	}
	n.chronicReported = true
	n.report(Report{Type: RepChronicBattery, Phone: n.id})
}

// emitExternal publishes a sink result unless the node is suppressing
// catch-up output (§III-D).
func (n *Node) emitExternal(t *tuple.Tuple) {
	if Role(n.role.Load()) == RoleStandby || n.suppress.Load() {
		return
	}
	if n.curTrace.ID != 0 {
		slot := ""
		if p := n.pipe.Load(); p != nil {
			slot = p.slot
		}
		n.tracer.Record(&n.curTrace, obs.SpanSink, string(n.id), slot, "", int64(n.clk.Now()))
	}
	if n.cfg.OnSinkOutput != nil {
		n.cfg.OnSinkOutput(t)
	}
}

// sendCross ships one item to an operator on another slot. Emissions are
// coalesced per destination slot by the batcher, which flushes on size,
// latency, or an in-band marker, and delivers with urgent-mode cellular
// fallback and failure reporting (§III-D, §III-E).
func (n *Node) sendCross(p *pipeline, down int, toOp, fromOp string, item tuple.Item) {
	seq := p.nextOutSeq(down)
	if Role(n.role.Load()) == RoleStandby {
		return // sequence kept aligned with the primary, nothing sent
	}
	toSlot := p.downs[down]
	if n.cfg.Scheme.PreservesAtEdges() && item.Tuple != nil {
		// Classic input preservation writes every retained output to
		// flash on the data path — part of local/dist-n's steady-state
		// overhead (§IV-B).
		n.cfg.Store.AppendEdge(toSlot, seq, fromOp, toOp, item.Tuple)
		n.clk.Sleep(n.cfg.Phone.FlashWriteTime(item.Tuple.Size))
	}
	msg := StreamMsg{FromSlot: p.slot, FromOp: fromOp, ToSlot: toSlot, ToOp: toOp, EdgeSeq: seq, Item: item}
	if n.curTrace.ID != 0 {
		n.tracer.Record(&n.curTrace, obs.SpanEmit, string(n.id), p.slot, fromOp, int64(n.clk.Now()))
		msg.Trace = n.curTrace
	}
	n.batch.add(toSlot, msg)
}

// sendBatch ships one flushed batch to the destination slot's primary and,
// for fresh data under rep-2, a replica copy to its standby. A batch of one
// travels as a plain StreamMsg so the unbatched wire format is unchanged.
// Callers hold the batcher's send mutex, which keeps edge FIFO order across
// concurrent flushers.
func (n *Node) sendBatch(toSlot string, msgs []StreamMsg, bytes int, class simnet.Class) {
	if len(msgs) == 0 {
		return
	}
	if n.cfg.BatchStats != nil {
		n.cfg.BatchStats.Observe(len(msgs))
	}
	// Traced messages record their batch-flush/network-send span here —
	// the delta from their emit span is the batch wait. Gated on active
	// sampling so untraced runs never scan the batch.
	if n.tracer.SampleEvery() > 0 {
		for i := range msgs {
			if msgs[i].Trace.ID != 0 {
				n.tracer.Record(&msgs[i].Trace, obs.SpanSend, string(n.id),
					msgs[i].FromSlot, msgs[i].FromOp, int64(n.clk.Now()))
			}
		}
	}
	var payload interface{}
	single := len(msgs) == 1
	if single {
		payload = msgs[0]
	} else {
		payload = BatchMsg{ToSlot: toSlot, Msgs: msgs}
	}
	// The standby's copy must be cut before the primary send: the primary
	// dispatcher recycles the slice it unbatches, so sharing one backing
	// array — or copying from it after delivery — races with the zeroing.
	var replica interface{}
	if class == simnet.ClassData && n.cfg.Scheme.Replicated() {
		if single {
			replica = payload
		} else {
			replica = BatchMsg{ToSlot: toSlot, Msgs: append(takeBatchSlice(), msgs...)}
		}
	}
	n.deliverData(toSlot, bytes, payload, class)
	if replica != nil {
		if standby, ok := n.resolveStandby(toSlot); ok {
			if err := n.cfg.WiFi.Unicast(n.id, standby, simnet.ClassReplication, bytes, replica); err == nil {
				n.cfg.Phone.DrainTx(bytes)
			}
		} else if bm, ok := replica.(BatchMsg); ok {
			recycleBatchSlice(bm.Msgs) // standby gone (promoted): copy unused
		}
	}
	if single {
		// Multi-message slices are recycled by the receiver after
		// unbatching; a single message was copied into the payload.
		recycleBatchSlice(msgs)
	}
}

// reportAfterAttempts failed delivery attempts trigger the failure report
// that starts controller-side recovery (§III-D); delivery keeps retrying
// afterwards.
const reportAfterAttempts = 3

// maxDeliveryAttempts bounds the full retry horizon (~6 s of simulated
// time at 200 ms per attempt). A coalesced batch carries many tuples, so
// it must not be dropped wholesale on the first sign of trouble: the
// resolver is re-consulted every attempt, and once recovery re-points the
// slot (promotion, replacement) the batch lands at the new primary.
const maxDeliveryAttempts = 30

// markerDeliveryAttempts is the longer horizon (~60 s simulated) for
// deliveries carrying an in-band marker. Markers gate the alignment
// protocols — a dropped token stalls the checkpoint round, and a dropped
// replay-end marker leaves a suppressing sink wedged forever — so they
// keep retrying across a recovery window that would exhaust the data
// horizon.
const markerDeliveryAttempts = 300

// payloadCarriesMarker reports whether a delivery payload contains an
// in-band marker (alone or coalesced into a batch).
func payloadCarriesMarker(payload interface{}) bool {
	switch p := payload.(type) {
	case StreamMsg:
		return p.Item.Marker != nil
	case BatchMsg:
		for i := range p.Msgs {
			if p.Msgs[i].Item.Marker != nil {
				return true
			}
		}
	}
	return false
}

// deliverData resolves the destination slot's phone and sends reliably,
// falling back to the cellular network (urgent mode) when the WiFi path is
// broken. After reportAfterAttempts failures it reports the destination
// failed — kicking off recovery — and keeps retrying while the region
// re-points the slot, giving up only past the full retry horizon. The
// resolution rides the epoch-stamped route cache: a placement change bumps
// the region epoch, so retries observe re-points without paying the
// resolver round-trip per attempt.
func (n *Node) deliverData(toSlot string, size int, payload interface{}, class simnet.Class) {
	gen := atomic.LoadUint64(&n.sendGen)
	attempts := maxDeliveryAttempts
	if payloadCarriesMarker(payload) {
		attempts = markerDeliveryAttempts
	}
	var target simnet.NodeID
	for i := 0; i < attempts; i++ {
		if i > 0 {
			n.clk.Sleep(200 * time.Millisecond)
		}
		if atomic.LoadUint64(&n.sendGen) != gen {
			// The node restored mid-retry: this payload predates the
			// rewind, and its edge sequences will be re-emitted. A late
			// stale delivery would poison the receiver's dedup state
			// against those re-emissions.
			n.logf("%s: dropped %d stale bytes for %s across restore", n.id, size, toSlot)
			return
		}
		var ok bool
		if target, ok = n.resolvePrimary(toSlot); ok {
			if err := n.cfg.WiFi.Unicast(n.id, target, class, size, payload); err == nil {
				n.cfg.Phone.DrainTx(size)
				return
			}
			// Urgent mode: detour over the cellular network (§III-E).
			if n.cfg.Cell != nil && n.cfg.Cell.Attached(target) {
				if err := n.cfg.Cell.Send(n.id, target, class, size, payload); err == nil {
					n.cfg.Phone.DrainTx(size)
					n.mu.Lock()
					reported := n.urgentReported[toSlot]
					n.urgentReported[toSlot] = true
					n.mu.Unlock()
					if !reported {
						n.report(Report{Type: RepUrgent, Phone: n.id, Slot: toSlot, Observed: target})
					}
					return
				}
			}
		}
		if i == reportAfterAttempts-1 && target != "" {
			n.mu.Lock()
			already := n.unreachable[target]
			n.unreachable[target] = true
			n.mu.Unlock()
			if !already {
				n.report(Report{Type: RepFailure, Phone: n.id, Slot: toSlot, Observed: target})
			}
		}
	}
	n.logf("%s: dropped %d bytes for %s: unreachable past retry horizon", n.id, size, toSlot)
}

// sendMarker forwards an in-band marker to every downstream slot.
func (n *Node) sendMarker(m tuple.Marker) {
	p := n.pipe.Load()
	if p == nil {
		return
	}
	for down := range p.downs {
		n.sendCross(p, down, "", "", tuple.MarkerItem(m))
	}
}

// onToken runs the alignment step of token-triggered checkpointing.
func (n *Node) onToken(p *pipeline, qi int, from string, v uint64, edgeSeq uint64) {
	if from != externalSlot {
		p.noteInHW(qi, edgeSeq)
	} else {
		n.logVersion.Store(v)
	}
	n.mu.Lock()
	st, err := n.align.OnToken(from, v)
	if err != nil {
		n.logf("%s: token: %v", n.id, err)
		n.mu.Unlock()
		return
	}
	if !st.Complete {
		n.queues[from].stalled = true
		n.mu.Unlock()
		return
	}
	for _, q := range n.queues {
		q.stalled = false
	}
	n.mu.Unlock()
	n.cond.Broadcast()
	n.doTokenCheckpoint(v)
}

// onReplayEnd tracks catch-up termination markers. Replay-end markers are
// aligned exactly like tokens — a channel that has delivered its marker is
// stalled — so no fresh (post-recovery) tuple can overtake the marker
// through a reconverging path and be wrongly discarded by a suppressing
// sink. When every upstream has delivered one, a sink resumes publishing
// and reports; an interior node forwards the marker downstream.
func (n *Node) onReplayEnd(from string, epoch uint64) {
	n.mu.Lock()
	set, ok := n.replaySeen[epoch]
	if !ok {
		set = make(map[string]bool)
		n.replaySeen[epoch] = set
	}
	set[from] = true
	complete := len(set) == len(n.alignUpstreams)
	if !complete {
		if q, ok := n.queues[from]; ok {
			q.stalled = true
		}
		n.mu.Unlock()
		return
	}
	delete(n.replaySeen, epoch)
	for _, q := range n.queues {
		q.stalled = false
	}
	if n.isSink {
		n.suppress.Store(false)
	}
	isSink := n.isSink
	slot := n.slot
	n.mu.Unlock()
	n.cond.Broadcast()
	if isSink {
		n.report(Report{Type: RepCatchUpDone, Phone: n.id, Slot: slot, Epoch: epoch})
		return
	}
	n.sendMarker(tuple.Marker{Kind: tuple.MarkerReplayEnd, Version: epoch})
}

// doTokenCheckpoint snapshots the node (MobiStreams path), hands the blob
// to the async persist worker, and forwards the token (§III-B step 2).
//
// The executor's stop-the-world window covers only what the pipeline mode
// demands: the in-memory state copy under incremental-async (the flash
// write and chunked upload ride the persist goroutine), or the copy plus
// the synchronous flash write under FullOnly — the full-blob baseline whose
// pause grows with state size.
func (n *Node) doTokenCheckpoint(v uint64) {
	start := n.clk.Now()
	n.jot("ckpt.begin", v, "")
	blob, err := n.buildCheckpoint(v)
	if err != nil {
		n.logf("%s: checkpoint v%d: %v", n.id, v, err)
		return
	}
	n.clk.Sleep(n.cfg.Checkpoint.copyTime(blob.FullSize))
	if n.cfg.Checkpoint.FullOnly {
		n.clk.Sleep(n.cfg.Phone.FlashWriteTime(blob.Size))
	}
	n.cfg.Store.PutBlob(blob)
	n.jot("ckpt.seal", v, blob.Slot)
	if n.cfg.CkptStats != nil {
		n.cfg.CkptStats.Observe(n.clk.Now()-start, blob.Size, blob.FullSize, blob.IsDelta())
	}
	n.report(Report{Type: RepCheckpointed, Phone: n.id, Slot: blob.Slot, Version: v})
	select {
	case n.persistCh <- blob:
	default:
		n.logf("%s: persist backlog full, dropping v%d dissemination", n.id, v)
	}
	n.sendMarker(tuple.Marker{Kind: tuple.MarkerToken, Version: v})
}

// doPeriodicSnapshot is the local/dist-n checkpoint path: snapshot at a
// tuple boundary, charge the synchronous flash write, and under dist-n
// ship the state copies to the n peers *synchronously* — the classic
// schemes' checkpoint stalls the operator until the state is safe
// (Cooperative HA's HAU pause), which is the overhead the paper's Fig. 8
// exposes as n grows.
func (n *Node) doPeriodicSnapshot(v uint64) {
	start := n.clk.Now()
	blob, err := n.snapshot(v)
	if err != nil {
		n.logf("%s: snapshot v%d: %v", n.id, v, err)
		return
	}
	n.cfg.Store.PutBlob(blob)
	n.clk.Sleep(n.cfg.Phone.FlashWriteTime(blob.Size))
	if p := n.pipe.Load(); p != nil {
		n.mu.Lock()
		n.hwAt[v] = p.inHWMap()
		n.mu.Unlock()
	}
	n.report(Report{Type: RepCheckpointed, Phone: n.id, Slot: blob.Slot, Version: v})
	replicas := 0
	if n.cfg.Scheme.Kind == ft.DistN {
		for _, p := range n.cfg.DistPeers {
			if err := n.cfg.WiFi.Unicast(n.id, p, simnet.ClassCheckpoint, blob.Size, DistBlobMsg{Blob: blob}); err == nil {
				replicas++
				n.cfg.Phone.DrainTx(blob.Size)
			}
		}
	}
	if n.cfg.CkptStats != nil {
		// The classic schemes stall the executor through the flash write
		// and the peer shipping — their whole checkpoint is the pause.
		n.cfg.CkptStats.Observe(n.clk.Now()-start, blob.Size, blob.FullSize, false)
	}
	n.report(Report{Type: RepPersisted, Phone: n.id, Slot: blob.Slot, Version: v, Replicas: replicas})
}

// doResend replays retained output for a recovered downstream (input
// preservation, executed on the executor so ordering with fresh emissions
// is exact). The replay log is shipped in size-bounded batches over the
// same serialised delivery path as fresh output.
func (n *Node) doResend(downstream string, after uint64) {
	entries := n.cfg.Store.EdgeLogSince(downstream, after)
	n.mu.Lock()
	fromSlot := n.slot
	n.mu.Unlock()
	maxMsgs, maxBytes := n.batch.cfg.MaxMsgs, n.batch.cfg.MaxBytes
	if n.batch.cfg.Disable {
		maxMsgs = 1
	}
	var msgs []StreamMsg
	bytes := 0
	flush := func() {
		if len(msgs) == 0 {
			return
		}
		n.batch.sendMu.Lock()
		n.sendBatch(downstream, msgs, bytes, simnet.ClassRecovery)
		n.batch.sendMu.Unlock()
		msgs, bytes = nil, 0
	}
	for _, e := range entries {
		if msgs == nil {
			msgs = takeBatchSlice()
		}
		msgs = append(msgs, StreamMsg{FromSlot: fromSlot, FromOp: e.FromOp, ToSlot: downstream,
			ToOp: e.ToOp, EdgeSeq: e.EdgeSeq, Item: tuple.DataItem(e.T)})
		bytes += e.T.Size
		if len(msgs) >= maxMsgs || bytes >= maxBytes {
			flush()
		}
	}
	flush()
	n.logf("%s: resent %d retained tuples to %s after seq %d", n.id, len(entries), downstream, after)
}

// report sends a node report to the controller over cellular.
func (n *Node) report(r Report) {
	if n.cfg.Cell == nil || n.cfg.ControllerID == "" {
		return
	}
	r.Phone = n.id
	if r.Slot == "" {
		n.mu.Lock()
		r.Slot = n.slot
		n.mu.Unlock()
	}
	if err := n.cfg.Cell.Send(n.id, n.cfg.ControllerID, simnet.ClassControl, reportWireBytes, r); err != nil {
		n.logf("%s: report %v failed: %v", n.id, r.Type, err)
	}
}

// reportWireBytes is the modelled size of a control report; controller
// traffic is under 2 KB/s in the paper's applications (§III).
const reportWireBytes = 96
