package node

import (
	"sync"
	"time"

	"mobistreams/internal/simnet"
)

// BatchConfig bounds edge-level tuple batching. Emissions to the same
// destination slot are coalesced into one network send, cutting the
// per-message medium, lock and channel overhead on the ingress hot path.
// A batch flushes when it reaches MaxMsgs messages or MaxBytes payload
// bytes, when an in-band marker joins it (markers must not be delayed —
// checkpoint alignment depends on their timing), or when FlushInterval of
// simulated time passes with the batch still partial.
//
// Deprecated: prefer the consolidated QoS knobs (LatencyBudget,
// MaxBatchMsgs, MaxBatchBytes). BatchConfig remains supported; non-zero
// QoS fields override it field-by-field.
type BatchConfig struct {
	// MaxMsgs flushes a batch at this many messages (default 32).
	MaxMsgs int
	// MaxBytes flushes a batch at this many payload bytes (default 64 KB,
	// one WiFi airtime chunk, so a batch never monopolises the medium
	// against interleaving checkpoint traffic).
	MaxBytes int
	// FlushInterval bounds how long a partial batch may wait, in
	// simulated time (default 20 ms).
	FlushInterval time.Duration
	// Disable sends every message individually (the pre-batching path).
	Disable bool
}

func (c *BatchConfig) applyDefaults() {
	if c.MaxMsgs <= 0 {
		c.MaxMsgs = 32
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 10
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 20 * time.Millisecond
	}
}

// batchSlicePool recycles the []StreamMsg backing arrays batches are
// assembled in and shipped with, so the steady-state emission path does
// not allocate per batch.
var batchSlicePool = sync.Pool{
	New: func() interface{} { return make([]StreamMsg, 0, 64) },
}

func takeBatchSlice() []StreamMsg {
	return batchSlicePool.Get().([]StreamMsg)[:0]
}

// recycleBatchSlice zeroes and returns a batch slice to the pool. Callers
// must have copied out every field they keep; tuple payloads are reached
// through pointers, which survive the zeroing.
func recycleBatchSlice(s []StreamMsg) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	for i := range s {
		s[i] = StreamMsg{}
	}
	batchSlicePool.Put(s[:0]) //nolint:staticcheck // slice reuse is the point
}

// batcher coalesces a node's cross-slot emissions per destination slot.
//
// Concurrency: the executor appends under mu; flushes (size-triggered from
// the executor, latency-triggered from the flush loop) serialise through
// sendMu, and a flush extracts the pending batch only after acquiring
// sendMu — so batches leave in exactly the order they were cut, and edge
// FIFO order survives concurrent flushers.
type batcher struct {
	n   *Node
	cfg BatchConfig

	mu      sync.Mutex
	pending map[string]*edgeBatch

	// kick wakes the flush loop when a partial batch starts waiting.
	kick chan struct{}

	sendMu sync.Mutex

	// Adaptive flush deadline (QoS latency budget), all in nanoseconds and
	// accessed atomically. capNs is the slot's budget share (0 = adaptation
	// off, legacy FlushInterval applies), minNs the floor, deadlineNs the
	// live deadline the flush loop waits on. See qos.go.
	deadlineNs int64
	capNs      int64
	minNs      int64
}

// edgeBatch is the pending batch for one destination slot.
type edgeBatch struct {
	msgs  []StreamMsg
	bytes int
}

func newBatcher(n *Node, cfg BatchConfig) *batcher {
	cfg.applyDefaults()
	return &batcher{
		n:       n,
		cfg:     cfg,
		pending: make(map[string]*edgeBatch),
		kick:    make(chan struct{}, 1),
	}
}

// add appends one emission to its destination's pending batch, flushing
// immediately when a bound is hit or the message is an in-band marker.
func (b *batcher) add(toSlot string, msg StreamMsg) {
	if b.cfg.Disable {
		b.sendMu.Lock()
		s := takeBatchSlice()
		s = append(s, msg)
		b.n.sendBatch(toSlot, s, msg.Item.WireSize(), simnet.ClassData)
		b.sendMu.Unlock()
		return
	}
	b.mu.Lock()
	eb := b.pending[toSlot]
	if eb == nil {
		eb = &edgeBatch{msgs: takeBatchSlice()}
		b.pending[toSlot] = eb
	}
	eb.msgs = append(eb.msgs, msg)
	eb.bytes += msg.Item.WireSize()
	urgent := msg.Item.Marker != nil
	full := len(eb.msgs) >= b.cfg.MaxMsgs || eb.bytes >= b.cfg.MaxBytes
	b.mu.Unlock()
	if urgent || full {
		b.flushSlot(toSlot)
		if full && !urgent {
			b.noteSizeFlush()
		}
		return
	}
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// flushSlot sends the destination's pending batch, if any.
func (b *batcher) flushSlot(toSlot string) {
	b.sendMu.Lock()
	defer b.sendMu.Unlock()
	b.mu.Lock()
	eb := b.pending[toSlot]
	if eb == nil || len(eb.msgs) == 0 {
		b.mu.Unlock()
		return
	}
	delete(b.pending, toSlot)
	b.mu.Unlock()
	b.n.sendBatch(toSlot, eb.msgs, eb.bytes, simnet.ClassData)
}

// flushAll drains every pending batch (latency-bound flush, handoff).
func (b *batcher) flushAll() {
	b.sendMu.Lock()
	defer b.sendMu.Unlock()
	for {
		b.mu.Lock()
		var slot string
		var eb *edgeBatch
		for s, p := range b.pending {
			slot, eb = s, p
			break
		}
		if eb == nil {
			b.mu.Unlock()
			return
		}
		delete(b.pending, slot)
		b.mu.Unlock()
		b.n.sendBatch(slot, eb.msgs, eb.bytes, simnet.ClassData)
	}
}

// discardAll drops every pending batch without sending (restore rewound
// the emission sequences; the replay regenerates this output). It takes
// only the pending lock, so a flusher blocked in a delivery retry cannot
// stall a restore.
func (b *batcher) discardAll() {
	b.mu.Lock()
	for slot, eb := range b.pending {
		delete(b.pending, slot)
		recycleBatchSlice(eb.msgs)
	}
	b.mu.Unlock()
}

// pendingSlots reports how many destinations have a partial batch waiting.
func (b *batcher) pendingSlots() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// flushLoop is the latency bound: while partial batches are pending it
// flushes them every FlushInterval of simulated time, then parks until the
// next emission kicks it. Size- and marker-triggered flushes happen inline
// on the executor, so correctness never waits on this loop.
func (n *Node) flushLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.batch.kick:
		}
		for n.batch.pendingSlots() > 0 {
			select {
			case <-n.stopCh:
				return
			case <-n.clk.After(n.batch.flushInterval()):
				n.batch.noteLatencyFlush(n.batch.pendingMsgs())
				n.batch.flushAll()
			}
		}
	}
}
