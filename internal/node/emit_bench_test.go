package node

import (
	"testing"

	"mobistreams/internal/obs"
	"mobistreams/internal/tuple"
)

// BenchmarkEmitPath measures the emit-context contract through the
// compiled pipeline: src -> m1 -> m2 -> sink on one slot. The steady state
// is pinned to 0 allocs/op by TestEmitPathZeroAllocs and the msbench
// regression gate (`-exp emit`).
func BenchmarkEmitPath(b *testing.B) {
	n := emitBenchNode(false, obs.NewRegistry(), func(*tuple.Tuple) {})
	p := n.pipe.Load()
	idx := p.opIndex("src")
	t := &tuple.Tuple{Seq: 1, Size: 64, Value: 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.runOp(p, idx, "", t)
	}
}

// BenchmarkEmitPathLegacy measures the same chain through seed-contract
// operators and the []Out adapter — the allocation cost the redesign
// removed from the hot path.
func BenchmarkEmitPathLegacy(b *testing.B) {
	n := emitBenchNode(true, obs.NewRegistry(), func(*tuple.Tuple) {})
	p := n.pipe.Load()
	idx := p.opIndex("src")
	t := &tuple.Tuple{Seq: 1, Size: 64, Value: 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.runOp(p, idx, "", t)
	}
}

// TestEmitPathZeroAllocs pins the acceptance criterion: emissions via the
// new operator.Context allocate nothing in steady state — with the obs
// registry attached (histograms live, sampling off), so the pin covers the
// instrumented hot path — while the legacy adapter pays at least one slice
// per operator hop.
func TestEmitPathZeroAllocs(t *testing.T) {
	n := emitBenchNode(false, obs.NewRegistry(), func(*tuple.Tuple) {})
	p := n.pipe.Load()
	idx := p.opIndex("src")
	tt := &tuple.Tuple{Seq: 1, Size: 64, Value: 1.0}
	n.runOp(p, idx, "", tt) // settle any first-call laziness
	allocs := testing.AllocsPerRun(200, func() {
		n.runOp(p, idx, "", tt)
	})
	if allocs != 0 {
		t.Fatalf("emit-context path allocates %.1f objects/op, want 0", allocs)
	}

	ln := emitBenchNode(true, obs.NewRegistry(), func(*tuple.Tuple) {})
	lp := ln.pipe.Load()
	lidx := lp.opIndex("src")
	ln.runOp(lp, lidx, "", tt)
	legacy := testing.AllocsPerRun(200, func() {
		ln.runOp(lp, lidx, "", tt)
	})
	if legacy == 0 {
		t.Fatal("legacy adapter reported 0 allocs/op: benchmark harness lost its contrast")
	}
}

// TestEmitBenchDelivers sanity-checks the shared harness: every driven
// tuple reaches the sink on both contracts.
func TestEmitBenchDelivers(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		res := RunEmitBench(legacy, 500)
		if res.Emitted != 500 {
			t.Fatalf("legacy=%v: %d of 500 tuples reached the sink", legacy, res.Emitted)
		}
	}
}
