package node

import (
	"mobistreams/internal/checkpoint"
	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// StreamMsg is a data-plane message on a slot-to-slot edge. Each ordered
// pair of slots forms one FIFO stream carrying tuples and in-band markers,
// sequenced by EdgeSeq for duplicate suppression after recovery resends.
// Trace carries the sampled tracing context (zero = untraced).
type StreamMsg struct {
	FromSlot string
	FromOp   string
	ToSlot   string
	ToOp     string
	EdgeSeq  uint64
	Trace    obs.SpanCtx
	Item     tuple.Item
}

// BatchMsg coalesces several StreamMsgs bound for the same destination
// slot into one network send, amortising the per-message medium, lock and
// channel overhead of the ingress hot path. Messages appear in emission
// order; the receiver unbatches them into upstream queues under one lock.
type BatchMsg struct {
	ToSlot string
	Msgs   []StreamMsg
}

// WireSize sums the payload bytes the network charges for the batch.
func (b BatchMsg) WireSize() int {
	total := 0
	for i := range b.Msgs {
		total += b.Msgs[i].Item.WireSize()
	}
	return total
}

// PreserveMsg replicates one admitted source tuple to every phone in the
// region (UDP best-effort), so the replay log survives source failures.
type PreserveMsg struct {
	Version uint64
	Source  string
	T       *tuple.Tuple
}

// InterRegionMsg carries a result tuple from an upstream region's sink to
// this region's source node over the cellular network (Fig. 4).
type InterRegionMsg struct {
	SrcOp string
	Kind  string
	Size  int
	Value interface{}
}

// DistBlobMsg carries a whole checkpoint blob to one peer (dist-n unicast
// persistence).
type DistBlobMsg struct {
	Blob *checkpoint.Blob
}

// PendingItem is one queued-but-unprocessed stream item included in a
// departure handoff so no in-flight tuple is lost to mobility.
type PendingItem struct {
	FromSlot string
	FromOp   string
	ToOp     string
	EdgeSeq  uint64
	Item     tuple.Item
}

// TransferMsg carries a departing node's state — snapshot plus queued
// input — to its replacement over the cellular network (§III-E).
type TransferMsg struct {
	Slot    string
	Blob    *checkpoint.Blob
	Pending []PendingItem
}

// KeyRangeMsg ships one keyed group's [Lo,Hi) partition-state from a donor
// instance to a recipient during a live split or merge. State carries the
// KeyedState.ExportRange framing (nil for routing-only groups whose
// operator keeps no keyed state).
type KeyRangeMsg struct {
	Logical string
	Lo, Hi  string
	State   []byte
}

// FetchBlobReq asks a peer for a checkpoint blob (dist-n/local recovery).
type FetchBlobReq struct {
	Slot    string
	Version uint64
}

// ResendReq asks an upstream slot to resend retained output with
// EdgeSeq > After (input preservation replay, dist-n/local recovery).
type ResendReq struct {
	Downstream string
	After      uint64
}

// TruncateMsg tells an upstream slot that the sender's checkpoint covering
// edge sequences <= Upto has committed, so retained output can be dropped.
type TruncateMsg struct {
	Downstream string
	Upto       uint64
}

// Command is a controller-to-node instruction, delivered over cellular
// (ClassControl).
type Command struct {
	Op      CommandOp
	Version uint64
	Epoch   uint64
	Target  simnet.NodeID // handoff destination / fetch peer
	Slot    string
}

// CommandOp enumerates controller commands.
type CommandOp int

const (
	// CmdToken makes a source slot inject a checkpoint token (§III-B
	// step 1).
	CmdToken CommandOp = iota
	// CmdSnapshot makes a node snapshot now (local/dist-n periodic
	// checkpointing).
	CmdSnapshot
	// CmdCommit announces a fully committed checkpoint version.
	CmdCommit
	// CmdPause stops tuple processing at the next boundary.
	CmdPause
	// CmdResume restarts tuple processing.
	CmdResume
	// CmdRestore reloads operator state for Version from local storage.
	CmdRestore
	// CmdReplay makes a source slot replay preserved input from Version
	// and then emit a replay-end marker with Epoch.
	CmdReplay
	// CmdPromote promotes a rep-2 standby to primary.
	CmdPromote
	// CmdHandoff makes a departing node transfer state to Target.
	CmdHandoff
	// CmdFetchRestore makes a replacement fetch Version's blob for Slot
	// from peer Target (its own store if Target equals itself), restore,
	// and request upstream resends.
	CmdFetchRestore
	// CmdPing is the controller liveness probe (§III-D).
	CmdPing
	// CmdMigrate makes a still-healthy node transfer its slot to Target
	// over the region WiFi — the scheduler's planned live migration.
	CmdMigrate
)

var cmdNames = [...]string{"token", "snapshot", "commit", "pause", "resume",
	"restore", "replay", "promote", "handoff", "fetch-restore", "ping",
	"migrate"}

func (c CommandOp) String() string {
	if int(c) < len(cmdNames) {
		return cmdNames[c]
	}
	return "cmd(?)"
}

// Report is a node-to-controller notification, delivered over cellular
// (ClassControl).
type Report struct {
	Type     ReportType
	Phone    simnet.NodeID
	Slot     string
	Version  uint64
	Epoch    uint64
	Replicas int
	Observed simnet.NodeID // failed/unreachable phone for failure reports
	Err      string
}

// ReportType enumerates node reports.
type ReportType int

const (
	// RepCheckpointed: the node snapshotted Version (sink slots reporting
	// this is the token percolating back to the controller).
	RepCheckpointed ReportType = iota
	// RepPersisted: the node's Version blob is persisted (Replicas full
	// remote copies exist).
	RepPersisted
	// RepFailure: a downstream neighbour is unreachable.
	RepFailure
	// RepUrgent: the node fell back to cellular for a data edge.
	RepUrgent
	// RepCatchUpDone: a sink finished catch-up for Epoch.
	RepCatchUpDone
	// RepChronicBattery: the node's battery is at chronic level.
	RepChronicBattery
	// RepHandoffDone: a departing node finished transferring state.
	RepHandoffDone
	// RepRestored: the node finished a restore command.
	RepRestored
)

var repNames = [...]string{"checkpointed", "persisted", "failure", "urgent",
	"catchup-done", "chronic-battery", "handoff-done", "restored"}

func (r ReportType) String() string {
	if int(r) < len(repNames) {
		return repNames[r]
	}
	return "report(?)"
}

// externalSlot is the virtual upstream for externally admitted tuples and
// controller-injected markers on source slots.
const externalSlot = "__ext__"

// rerouteSlot is the virtual upstream carrying tuples a keyed instance
// received for a key range it no longer owns (queued before a partition
// table flip) and relayed to the new owner. Rerouted tuples carry no edge
// sequence — each reroute is one reliable unicast — and no checkpoint
// token ever travels this queue, so it is excluded from alignment.
const rerouteSlot = "__reroute__"
