package node

import (
	"sync"
	"sync/atomic"
	"testing"

	"mobistreams/internal/clock"
	"mobistreams/internal/ft"
	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
)

// epochResolver is a repointable placement with an epoch counter and a
// resolution call counter, standing in for the region during cache tests.
type epochResolver struct {
	mu      sync.Mutex
	primary map[string]simnet.NodeID
	epoch   uint64
	calls   int64
}

func (r *epochResolver) Primary(slot string) (simnet.NodeID, bool) {
	atomic.AddInt64(&r.calls, 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.primary[slot]
	return id, ok
}

func (r *epochResolver) Standby(string) (simnet.NodeID, bool) {
	atomic.AddInt64(&r.calls, 1)
	return "", false
}

func (r *epochResolver) Epoch() uint64 { return atomic.LoadUint64(&r.epoch) }

// repoint moves a slot to a new primary and bumps the epoch, exactly as
// the region does for recovery, promotion and migration.
func (r *epochResolver) repoint(slot string, to simnet.NodeID) {
	r.mu.Lock()
	r.primary[slot] = to
	r.mu.Unlock()
	atomic.AddUint64(&r.epoch, 1)
}

func (r *epochResolver) resolverCalls() int64 { return atomic.LoadInt64(&r.calls) }

// TestRouteCacheInvalidatesOnEpochBump streams tuples across a placement
// repoint: deliveries before the bump must land at the old primary,
// deliveries after it at the new one, every sequence exactly once — and
// the cache must actually serve, consulting the resolver only around the
// epoch change rather than once per send.
func TestRouteCacheInvalidatesOnEpochBump(t *testing.T) {
	clk := clock.NewScaled(1e6)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 1e12})
	tx := simnet.NewEndpoint("tx", 4096)
	rxA := simnet.NewEndpoint("rxA", 4096)
	rxB := simnet.NewEndpoint("rxB", 4096)
	w.Join(tx)
	w.Join(rxA)
	w.Join(rxB)
	res := &epochResolver{primary: map[string]simnet.NodeID{"down": "rxA"}}
	n := New(Config{
		Phone:    phone.New("tx", phone.Config{}),
		Scheme:   ft.BaseScheme,
		Clock:    clk,
		WiFi:     w,
		Endpoint: tx,
		Resolver: res,
		Batch:    BatchConfig{Disable: true},
	})
	if n.epochRes == nil {
		t.Fatal("node did not adopt the epoch resolver")
	}

	const perPhase = 200
	send := func(seq uint64) {
		n.deliverData("down", 100, streamMsg(seq), simnet.ClassData)
	}
	for seq := uint64(1); seq <= perPhase; seq++ {
		send(seq)
	}
	callsBeforeBump := res.resolverCalls()
	if callsBeforeBump > 4 {
		t.Fatalf("resolver consulted %d times for %d sends: cache not serving", callsBeforeBump, perPhase)
	}

	// Failover/migration mid-stream: the region repoints the slot and
	// bumps the epoch; in-flight senders must re-resolve.
	res.repoint("down", "rxB")
	for seq := uint64(perPhase + 1); seq <= 2*perPhase; seq++ {
		send(seq)
	}
	if calls := res.resolverCalls(); calls > callsBeforeBump+4 {
		t.Fatalf("resolver consulted %d times after the bump: cache not re-serving", calls-callsBeforeBump)
	}

	drain := func(ep *simnet.Endpoint) []uint64 {
		var seqs []uint64
		for {
			select {
			case m := <-ep.Inbox():
				seqs = append(seqs, m.Payload.(StreamMsg).EdgeSeq)
			default:
				return seqs
			}
		}
	}
	gotA, gotB := drain(rxA), drain(rxB)
	if len(gotA) != perPhase || len(gotB) != perPhase {
		t.Fatalf("rxA got %d, rxB got %d, want %d each", len(gotA), len(gotB), perPhase)
	}
	seen := make(map[uint64]bool)
	for _, s := range gotA {
		if s > perPhase {
			t.Fatalf("seq %d sent after the repoint landed at the old primary", s)
		}
		if seen[s] {
			t.Fatalf("seq %d delivered twice", s)
		}
		seen[s] = true
	}
	for _, s := range gotB {
		if s <= perPhase {
			t.Fatalf("seq %d sent before the repoint landed at the new primary", s)
		}
		if seen[s] {
			t.Fatalf("seq %d delivered twice", s)
		}
		seen[s] = true
	}
	if len(seen) != 2*perPhase {
		t.Fatalf("delivered %d distinct sequences, want %d", len(seen), 2*perPhase)
	}
}

// TestRouteCacheRetriesAcrossRepoint covers the failover window itself: a
// delivery in flight while the destination is dead must keep retrying and
// land exactly once at the new primary installed mid-retry — the cached
// route must not pin the dead phone past the epoch bump.
func TestRouteCacheRetriesAcrossRepoint(t *testing.T) {
	clk := clock.NewScaled(2e5)
	w := simnet.NewWiFi(clk, simnet.WiFiConfig{BitsPerSecond: 1e12})
	tx := simnet.NewEndpoint("tx", 64)
	rxA := simnet.NewEndpoint("rxA", 64)
	rxB := simnet.NewEndpoint("rxB", 64)
	w.Join(tx)
	w.Join(rxA)
	w.Join(rxB)
	res := &epochResolver{primary: map[string]simnet.NodeID{"down": "rxA"}}
	n := New(Config{
		Phone:    phone.New("tx", phone.Config{}),
		Scheme:   ft.BaseScheme,
		Clock:    clk,
		WiFi:     w,
		Endpoint: tx,
		Resolver: res,
		Batch:    BatchConfig{Disable: true},
	})

	// Warm the cache on the doomed primary, then kill it.
	if err := w.Unicast("tx", "rxA", simnet.ClassData, 10, nil); err != nil {
		t.Fatal(err)
	}
	n.deliverData("down", 100, streamMsg(1), simnet.ClassData)
	<-rxA.Inbox() // the warm-up unicast
	<-rxA.Inbox() // seq 1
	rxA.Seal()
	w.SetPresent("rxA", false)

	done := make(chan struct{})
	go func() {
		defer close(done)
		n.deliverData("down", 100, streamMsg(2), simnet.ClassData)
	}()
	// Let a few retries fail against the dead primary, then repoint.
	clk.Sleep(600 * 1e6) // 600 ms simulated: ≥2 failed attempts
	res.repoint("down", "rxB")
	<-done
	select {
	case m := <-rxB.Inbox():
		if m.Payload.(StreamMsg).EdgeSeq != 2 {
			t.Fatalf("new primary received seq %d, want 2", m.Payload.(StreamMsg).EdgeSeq)
		}
	default:
		t.Fatal("in-flight delivery never landed at the new primary")
	}
	select {
	case <-rxB.Inbox():
		t.Fatal("duplicate delivery at the new primary")
	default:
	}
}
