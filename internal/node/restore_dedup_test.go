package node

import "testing"

// Regression: after a (delta-chain) restore, installBlobLocked resets every
// ordered queue and pins its watermark to the restored inHW. Upstreams
// rewound to the same checkpoint re-emit the covered edge sequences; those
// must be dropped below the watermark, while the first uncovered sequence
// flows — otherwise a restored node re-processes (and re-emits) tuples the
// restored version already covers.
func TestOrderedQueueRestoredWatermarkDropsCoveredSeqs(t *testing.T) {
	q := newStreamQueue(true)
	q.reset()
	q.lastEnq = 5 // restored inHW: the checkpoint covered seqs 1..5
	for seq := uint64(1); seq <= 5; seq++ {
		if q.enqueue(item(seq)) {
			t.Fatalf("re-emitted covered seq %d delivered after restore", seq)
		}
	}
	if !q.enqueue(item(6)) {
		t.Fatal("first uncovered seq not delivered")
	}
	got := drain(q)
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("delivered %v, want [6]", got)
	}
}

// Regression for the flushPark interaction: parked out-of-order arrivals
// above a post-restore gap must wait for the re-emissions to fill it, and
// a park overflow must deliver them in order exactly once — never below
// sequences the restored watermark already covered.
func TestOrderedQueueRestoredParkFlushNoDuplicates(t *testing.T) {
	q := newStreamQueue(true)
	q.reset()
	q.lastEnq = 3 // restore covered 1..3
	// Stale in-flight arrivals from before the failure land above the gap
	// (the upstream will re-emit 4..5 during catch-up).
	if q.enqueue(item(6)) || q.enqueue(item(7)) {
		t.Fatal("out-of-order arrivals delivered before the gap filled")
	}
	// Catch-up re-emissions fill the gap; 6 and 7 must drain from the
	// park exactly once.
	q.enqueue(item(4))
	q.enqueue(item(5))
	// Duplicate deliveries of the parked items (retry paths) must drop.
	if q.enqueue(item(6)) || q.enqueue(item(7)) {
		t.Fatal("parked items delivered twice")
	}
	got := drain(q)
	want := []uint64{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// Regression: an unordered queue's dedup window is reset by restore, so
// catch-up re-emissions are accepted exactly once — the first copy flows,
// the retry copy drops.
func TestUnorderedQueueResetAcceptsReemissionsOnce(t *testing.T) {
	q := newStreamQueue(false)
	for seq := uint64(1); seq <= 3; seq++ {
		q.enqueue(item(seq))
	}
	drain(q)
	q.reset() // the restore path
	for seq := uint64(1); seq <= 3; seq++ {
		if !q.enqueue(item(seq)) {
			t.Fatalf("re-emission of seq %d dropped by stale dedup state", seq)
		}
		if q.enqueue(item(seq)) {
			t.Fatalf("duplicate re-emission of seq %d delivered", seq)
		}
	}
}
