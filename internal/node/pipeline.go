package node

import (
	"sync/atomic"
	"time"

	"mobistreams/internal/keyed"
	"mobistreams/internal/obs"
	"mobistreams/internal/operator"
	"mobistreams/internal/tuple"
)

// pipeline is the compiled data plane for one slot: the operator chain,
// every operator's fan-out routes and the slot's marker routes, resolved
// once — at slot configuration, migration transfer-in or restore time —
// into an immutable structure the executor reads without locks or map
// lookups. A reconfiguration builds a fresh pipeline and swaps it in
// atomically (Node.pipe), so the steady-state path never observes a
// half-built topology.
//
// The outSeq/inHW counters are the only mutable state. They are owned by
// the executor goroutine and accessed with atomics, so control-plane
// snapshots taken while the executor is parked (pause, handoff) stay
// race-clean even against an executor wedged in a delivery retry.
type pipeline struct {
	slot string
	ops  []compiledOp
	// directed resolves EmitTo targets (any downstream operator of this
	// slot's operators, same- or cross-slot) without consulting the graph.
	directed []route
	// upstreams is the queue order: the slot's graph upstreams, then
	// externalSlot for source slots. Matches Node.qOrder index-for-index.
	upstreams []string
	// downs is the sorted list of downstream slots (marker fan-out).
	downs     []string
	isSource  bool
	isSink    bool
	sourceOps []string

	// keyedGroup/keyedInst identify this slot's keyed-group membership
	// when it hosts one elastic instance (nil/0 otherwise). The executor
	// consults them to detect tuples whose key range moved away after a
	// live split, which are rerouted to the new owner instead of run.
	keyedGroup *keyed.Group
	keyedInst  int

	// outSeq is the per-downstream-slot emission sequence (parallel to
	// downs); inHW the per-upstream processed watermark (parallel to
	// upstreams). Executor-owned, atomically accessed.
	outSeq []uint64
	inHW   []uint64

	// timers is the min-heap of pending one-shot operator timers
	// (Context.SetTimer). Executor-owned: registered during Process,
	// drained at tuple boundaries; a fresh pipeline starts empty and
	// timer-using operators re-arm on their next input.
	timers []opTimer

	// edgeWait holds each upstream edge's queue-wait histogram (parallel
	// to upstreams; entries nil when obs is off), resolved at compile
	// time so the dequeue path reads an immutable slice.
	edgeWait []*obs.Histogram
}

// opTimer is one pending timer: the simulated-time deadline and the owning
// operator's pipeline index.
type opTimer struct {
	at time.Duration
	op int
}

// compiledOp is one operator with its precompiled emission routes, its
// bound processing function (emit-context method value, or the legacy
// []Out adapter) and its reusable Context.
type compiledOp struct {
	id string
	op operator.Operator
	// proc is the uniform processing entry point: both contracts emit
	// through ctx, so the executor's hot path is contract-agnostic.
	proc operator.ProcFunc
	// ctx is the operator's bound emit-context; one per pipeline
	// incarnation, so steady-state emission allocates nothing.
	ctx *operator.Context
	// timer is the operator's OnTimer handler, nil when it has none.
	timer operator.TimerOperator
	// fanout lists the default (To == "") emission targets in graph
	// declaration order, preserving the legacy interleaving of local
	// recursion and cross-slot sends.
	fanout []route
	// keyed lists the keyed-group emission targets: each entry collapses
	// the group's per-instance edges into one partition-table dispatch —
	// the emit path resolves the tuple's key to the owning instance and
	// follows exactly that instance's route. One atomic load plus a
	// binary search; no locks, no allocations.
	keyed []keyedRoute
	// external marks a sink operator: no downstream, emissions publish.
	external bool
	// lat is the operator's Process-latency histogram, resolved from the
	// obs registry at compile time (nil when obs is off): the hot path
	// pays one nil check, never a map lookup or lock.
	lat *obs.Histogram
}

// opSink is the operator.Runtime the node binds behind each compiled
// operator's Context: emissions follow the precompiled routes, timers land
// in the pipeline's heap, and Now reads the simulated clock. One opSink is
// allocated per operator at compile time; nothing on the per-tuple path
// allocates.
type opSink struct {
	n   *Node
	p   *pipeline
	idx int
}

// Emit implements operator.Runtime: graph-order fan-out, or external
// publication on a sink operator. Keyed-group targets resolve the tuple's
// key through the group's partition table to exactly one instance.
func (s *opSink) Emit(t *tuple.Tuple) {
	c := &s.p.ops[s.idx]
	if c.external {
		s.n.emitExternal(t)
		return
	}
	for i := range c.keyed {
		kr := &c.keyed[i]
		s.n.followRoute(s.p, c.id, kr.routes[kr.group.Owner(t.Kind)], t)
	}
	for _, r := range c.fanout {
		s.n.followRoute(s.p, c.id, r, t)
	}
}

// EmitTo implements operator.Runtime: one routed emission; an unreachable
// target is logged and dropped, mirroring the legacy executor.
func (s *opSink) EmitTo(to string, t *tuple.Tuple) bool {
	r, ok := s.p.routeTo(to)
	if !ok {
		s.n.logf("%s: emission to unknown operator %s", s.n.id, to)
		return false
	}
	s.n.followRoute(s.p, s.p.ops[s.idx].id, r, t)
	return true
}

// Now implements operator.Runtime.
func (s *opSink) Now() time.Duration { return s.n.clk.Now() }

// SetTimer implements operator.Runtime: accepted only when the operator
// handles OnTimer.
func (s *opSink) SetTimer(at time.Duration) bool {
	if s.p.ops[s.idx].timer == nil {
		return false
	}
	s.p.addTimer(at, s.idx)
	return true
}

// route is one resolved emission target: a same-slot operator index, or a
// cross-slot destination identified by its downs index.
type route struct {
	toOp  string
	local int // >= 0: index into pipeline.ops; -1: cross-slot
	down  int // index into pipeline.downs when local < 0
}

// keyedRoute is one collapsed keyed-group edge: routes is indexed by
// instance index, group resolves a key to that index through the live
// partition table.
type keyedRoute struct {
	group  *keyed.Group
	routes []route
}

// compilePipeline resolves a slot's topology against the graph and binds
// each operator's processing function and emit-context. It panics when an
// operator implements neither processing contract — a wiring bug
// operator.Registry.Validate surfaces as an error at region build time.
func (n *Node) compilePipeline(slot string, opIDs []string, ops []operator.Operator) *pipeline {
	g := n.graph
	p := &pipeline{slot: slot}
	p.downs = g.SlotDownstreams(slot)
	downIdx := make(map[string]int, len(p.downs))
	for i, d := range p.downs {
		downIdx[d] = i
	}
	opPos := make(map[string]int, len(opIDs))
	for i, id := range opIDs {
		opPos[id] = i
	}
	resolve := func(to string) route {
		if li, ok := opPos[to]; ok {
			return route{toOp: to, local: li}
		}
		return route{toOp: to, local: -1, down: downIdx[g.SlotOf(to)]}
	}
	seen := make(map[string]bool)
	for i, id := range opIDs {
		c := compiledOp{id: id, op: ops[i]}
		targets := g.Downstream(id)
		if len(targets) == 0 {
			c.external = true
		}
		collapsed := make(map[string]bool)
		for _, tgt := range targets {
			r := resolve(tgt)
			if !seen[tgt] {
				seen[tgt] = true
				p.directed = append(p.directed, r)
			}
			// A target inside a keyed group collapses — once per group —
			// into a partition-table dispatch over all its instances
			// instead of a per-instance fanout entry. Markers are not
			// affected: they travel slot-level through p.downs.
			if gs, _, ok := g.KeyedGroupOf(tgt); ok {
				if grp := n.cfg.Keyed[gs.Logical]; grp != nil {
					if !collapsed[gs.Logical] {
						collapsed[gs.Logical] = true
						kr := keyedRoute{group: grp, routes: make([]route, len(gs.Instances))}
						for ii, inst := range gs.Instances {
							kr.routes[ii] = resolve(inst)
						}
						c.keyed = append(c.keyed, kr)
					}
					continue
				}
			}
			c.fanout = append(c.fanout, r)
		}
		p.ops = append(p.ops, c)
	}
	for _, id := range opIDs {
		if gs, inst, ok := g.KeyedGroupOf(id); ok {
			if grp := n.cfg.Keyed[gs.Logical]; grp != nil {
				p.keyedGroup = grp
				p.keyedInst = inst
			}
		}
	}
	p.upstreams = append([]string(nil), g.SlotUpstreams(slot)...)
	for _, id := range g.Sources() {
		if g.SlotOf(id) == slot {
			p.isSource = true
			p.sourceOps = append(p.sourceOps, id)
		}
	}
	for _, id := range g.Sinks() {
		if g.SlotOf(id) == slot {
			p.isSink = true
		}
	}
	if p.isSource {
		p.upstreams = append(p.upstreams, externalSlot)
	}
	if p.keyedGroup != nil {
		// Keyed instances take rerouted tuples on their own pseudo-queue,
		// kept index-parallel with the real upstreams but excluded from
		// token alignment (see configureSlot).
		p.upstreams = append(p.upstreams, rerouteSlot)
	}
	p.outSeq = make([]uint64, len(p.downs))
	p.inHW = make([]uint64, len(p.upstreams))
	p.edgeWait = make([]*obs.Histogram, len(p.upstreams))
	if n.cfg.Obs != nil {
		for i, up := range p.upstreams {
			p.edgeWait[i] = n.cfg.Obs.EdgeWait(up + "->" + slot)
		}
	}
	for i := range p.ops {
		c := &p.ops[i]
		if n.cfg.Obs != nil {
			c.lat = n.cfg.Obs.OpLatency(c.id)
		}
		c.proc = operator.Proc(c.op)
		if c.proc == nil {
			panic("node: operator " + c.id + " implements neither processing contract")
		}
		if th, ok := c.op.(operator.TimerOperator); ok {
			c.timer = th
		}
		c.ctx = operator.NewContext(&opSink{n: n, p: p, idx: i})
		if ks, ok := c.op.(operator.KeyedStater); ok {
			c.ctx.BindState(ks.KeyedState())
		}
	}
	return p
}

// addTimer pushes a pending operator timer onto the min-heap. Executor-
// owned, like the rest of the timer state.
func (p *pipeline) addTimer(at time.Duration, op int) {
	p.timers = append(p.timers, opTimer{at: at, op: op})
	for i := len(p.timers) - 1; i > 0; {
		parent := (i - 1) / 2
		if p.timers[parent].at <= p.timers[i].at {
			break
		}
		p.timers[parent], p.timers[i] = p.timers[i], p.timers[parent]
		i = parent
	}
}

// nextTimerAt returns the earliest pending timer deadline.
func (p *pipeline) nextTimerAt() (time.Duration, bool) {
	if len(p.timers) == 0 {
		return 0, false
	}
	return p.timers[0].at, true
}

// timerDue reports whether a pending timer has reached its deadline.
func (p *pipeline) timerDue(now time.Duration) bool {
	return len(p.timers) > 0 && p.timers[0].at <= now
}

// popDueTimer removes and returns the earliest timer if it is due.
func (p *pipeline) popDueTimer(now time.Duration) (opTimer, bool) {
	if !p.timerDue(now) {
		return opTimer{}, false
	}
	top := p.timers[0]
	last := len(p.timers) - 1
	p.timers[0] = p.timers[last]
	p.timers = p.timers[:last]
	for i := 0; ; {
		s := i
		if l := 2*i + 1; l < len(p.timers) && p.timers[l].at < p.timers[s].at {
			s = l
		}
		if r := 2*i + 2; r < len(p.timers) && p.timers[r].at < p.timers[s].at {
			s = r
		}
		if s == i {
			break
		}
		p.timers[i], p.timers[s] = p.timers[s], p.timers[i]
		i = s
	}
	return top, true
}

// opIndex resolves an operator ID to its pipeline index. Slots host a
// handful of operators, so a linear scan beats a map on the hot path.
func (p *pipeline) opIndex(id string) int {
	for i := range p.ops {
		if p.ops[i].id == id {
			return i
		}
	}
	return -1
}

// routeTo resolves an EmitTo target.
func (p *pipeline) routeTo(to string) (route, bool) {
	for _, r := range p.directed {
		if r.toOp == to {
			return r, true
		}
	}
	return route{}, false
}

// upstreamIndex resolves a queue name to its upstreams index, or -1.
func (p *pipeline) upstreamIndex(name string) int {
	for i, u := range p.upstreams {
		if u == name {
			return i
		}
	}
	return -1
}

// nextOutSeq assigns the next emission sequence on a downstream edge.
func (p *pipeline) nextOutSeq(down int) uint64 {
	return atomic.AddUint64(&p.outSeq[down], 1)
}

// noteInHW advances an upstream's processed watermark. The executor is the
// only writer, so a load-compare-store suffices.
func (p *pipeline) noteInHW(qi int, seq uint64) {
	if qi >= 0 && seq > atomic.LoadUint64(&p.inHW[qi]) {
		atomic.StoreUint64(&p.inHW[qi], seq)
	}
}

// operators returns the pipeline's operator chain in slot order.
func (p *pipeline) operators() []operator.Operator {
	ops := make([]operator.Operator, len(p.ops))
	for i := range p.ops {
		ops[i] = p.ops[i].op
	}
	return ops
}

// outSeqMap exports the non-zero emission sequences (checkpoint runtime
// state, wire-compatible with the pre-pipeline map representation).
func (p *pipeline) outSeqMap() map[string]uint64 {
	m := make(map[string]uint64, len(p.downs))
	for i, d := range p.downs {
		if v := atomic.LoadUint64(&p.outSeq[i]); v > 0 {
			m[d] = v
		}
	}
	return m
}

// inHWMap exports the non-zero processed watermarks, excluding the
// external and reroute pseudo-upstreams (never sequenced).
func (p *pipeline) inHWMap() map[string]uint64 {
	m := make(map[string]uint64, len(p.upstreams))
	for i, u := range p.upstreams {
		if u == externalSlot || u == rerouteSlot {
			continue
		}
		if v := atomic.LoadUint64(&p.inHW[i]); v > 0 {
			m[u] = v
		}
	}
	return m
}

// setCounters initialises the mutable counters from restored runtime state.
func (p *pipeline) setCounters(outSeq, inHW map[string]uint64) {
	for i, d := range p.downs {
		atomic.StoreUint64(&p.outSeq[i], outSeq[d])
	}
	for i, u := range p.upstreams {
		atomic.StoreUint64(&p.inHW[i], inHW[u])
	}
}
