package node

import (
	"sync/atomic"

	"mobistreams/internal/graph"
	"mobistreams/internal/operator"
)

// pipeline is the compiled data plane for one slot: the operator chain,
// every operator's fan-out routes and the slot's marker routes, resolved
// once — at slot configuration, migration transfer-in or restore time —
// into an immutable structure the executor reads without locks or map
// lookups. A reconfiguration builds a fresh pipeline and swaps it in
// atomically (Node.pipe), so the steady-state path never observes a
// half-built topology.
//
// The outSeq/inHW counters are the only mutable state. They are owned by
// the executor goroutine and accessed with atomics, so control-plane
// snapshots taken while the executor is parked (pause, handoff) stay
// race-clean even against an executor wedged in a delivery retry.
type pipeline struct {
	slot string
	ops  []compiledOp
	// directed resolves EmitTo targets (any downstream operator of this
	// slot's operators, same- or cross-slot) without consulting the graph.
	directed []route
	// upstreams is the queue order: the slot's graph upstreams, then
	// externalSlot for source slots. Matches Node.qOrder index-for-index.
	upstreams []string
	// downs is the sorted list of downstream slots (marker fan-out).
	downs     []string
	isSource  bool
	isSink    bool
	sourceOps []string

	// outSeq is the per-downstream-slot emission sequence (parallel to
	// downs); inHW the per-upstream processed watermark (parallel to
	// upstreams). Executor-owned, atomically accessed.
	outSeq []uint64
	inHW   []uint64
}

// compiledOp is one operator with its precompiled emission routes.
type compiledOp struct {
	id string
	op operator.Operator
	// fanout lists the default (To == "") emission targets in graph
	// declaration order, preserving the legacy interleaving of local
	// recursion and cross-slot sends.
	fanout []route
	// external marks a sink operator: no downstream, emissions publish.
	external bool
}

// route is one resolved emission target: a same-slot operator index, or a
// cross-slot destination identified by its downs index.
type route struct {
	toOp  string
	local int // >= 0: index into pipeline.ops; -1: cross-slot
	down  int // index into pipeline.downs when local < 0
}

// compilePipeline resolves a slot's topology against the graph.
func compilePipeline(g *graph.Graph, slot string, opIDs []string, ops []operator.Operator) *pipeline {
	p := &pipeline{slot: slot}
	p.downs = g.SlotDownstreams(slot)
	downIdx := make(map[string]int, len(p.downs))
	for i, d := range p.downs {
		downIdx[d] = i
	}
	opPos := make(map[string]int, len(opIDs))
	for i, id := range opIDs {
		opPos[id] = i
	}
	resolve := func(to string) route {
		if li, ok := opPos[to]; ok {
			return route{toOp: to, local: li}
		}
		return route{toOp: to, local: -1, down: downIdx[g.SlotOf(to)]}
	}
	seen := make(map[string]bool)
	for i, id := range opIDs {
		c := compiledOp{id: id, op: ops[i]}
		targets := g.Downstream(id)
		if len(targets) == 0 {
			c.external = true
		}
		for _, tgt := range targets {
			r := resolve(tgt)
			c.fanout = append(c.fanout, r)
			if !seen[tgt] {
				seen[tgt] = true
				p.directed = append(p.directed, r)
			}
		}
		p.ops = append(p.ops, c)
	}
	p.upstreams = append([]string(nil), g.SlotUpstreams(slot)...)
	for _, id := range g.Sources() {
		if g.SlotOf(id) == slot {
			p.isSource = true
			p.sourceOps = append(p.sourceOps, id)
		}
	}
	for _, id := range g.Sinks() {
		if g.SlotOf(id) == slot {
			p.isSink = true
		}
	}
	if p.isSource {
		p.upstreams = append(p.upstreams, externalSlot)
	}
	p.outSeq = make([]uint64, len(p.downs))
	p.inHW = make([]uint64, len(p.upstreams))
	return p
}

// opIndex resolves an operator ID to its pipeline index. Slots host a
// handful of operators, so a linear scan beats a map on the hot path.
func (p *pipeline) opIndex(id string) int {
	for i := range p.ops {
		if p.ops[i].id == id {
			return i
		}
	}
	return -1
}

// routeTo resolves an EmitTo target.
func (p *pipeline) routeTo(to string) (route, bool) {
	for _, r := range p.directed {
		if r.toOp == to {
			return r, true
		}
	}
	return route{}, false
}

// upstreamIndex resolves a queue name to its upstreams index, or -1.
func (p *pipeline) upstreamIndex(name string) int {
	for i, u := range p.upstreams {
		if u == name {
			return i
		}
	}
	return -1
}

// nextOutSeq assigns the next emission sequence on a downstream edge.
func (p *pipeline) nextOutSeq(down int) uint64 {
	return atomic.AddUint64(&p.outSeq[down], 1)
}

// noteInHW advances an upstream's processed watermark. The executor is the
// only writer, so a load-compare-store suffices.
func (p *pipeline) noteInHW(qi int, seq uint64) {
	if qi >= 0 && seq > atomic.LoadUint64(&p.inHW[qi]) {
		atomic.StoreUint64(&p.inHW[qi], seq)
	}
}

// operators returns the pipeline's operator chain in slot order.
func (p *pipeline) operators() []operator.Operator {
	ops := make([]operator.Operator, len(p.ops))
	for i := range p.ops {
		ops[i] = p.ops[i].op
	}
	return ops
}

// outSeqMap exports the non-zero emission sequences (checkpoint runtime
// state, wire-compatible with the pre-pipeline map representation).
func (p *pipeline) outSeqMap() map[string]uint64 {
	m := make(map[string]uint64, len(p.downs))
	for i, d := range p.downs {
		if v := atomic.LoadUint64(&p.outSeq[i]); v > 0 {
			m[d] = v
		}
	}
	return m
}

// inHWMap exports the non-zero processed watermarks, excluding the
// external pseudo-upstream (never sequenced).
func (p *pipeline) inHWMap() map[string]uint64 {
	m := make(map[string]uint64, len(p.upstreams))
	for i, u := range p.upstreams {
		if u == externalSlot {
			continue
		}
		if v := atomic.LoadUint64(&p.inHW[i]); v > 0 {
			m[u] = v
		}
	}
	return m
}

// setCounters initialises the mutable counters from restored runtime state.
func (p *pipeline) setCounters(outSeq, inHW map[string]uint64) {
	for i, d := range p.downs {
		atomic.StoreUint64(&p.outSeq[i], outSeq[d])
	}
	for i, u := range p.upstreams {
		atomic.StoreUint64(&p.inHW[i], inHW[u])
	}
}
