package node

import (
	"fmt"

	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
)

// This file is the node half of elastic keyed parallelism: exporting and
// importing contiguous key ranges of an instance's KeyedState during a
// live split or merge, and relaying tuples that arrive for a key range
// this instance no longer owns. The region orchestrates the protocol
// (pause donor → export → ship → import → flip table → resume); the node
// supplies the state surgery and keeps the data plane exactly-once while
// the table flips.

// OperatorByID returns the hosted pipeline's live operator instance, or
// nil (tests and telemetry probes; not for concurrent state mutation).
func (n *Node) OperatorByID(id string) operator.Operator {
	p := n.pipe.Load()
	if p == nil {
		return nil
	}
	for i := range p.ops {
		if p.ops[i].id == id {
			return p.ops[i].op
		}
	}
	return nil
}

// keyedState finds the hosted slot's keyed state store, if its operator
// keeps one. Groups whose operator is stateless split routing-only.
func (n *Node) keyedState() *operator.KeyedState {
	p := n.pipe.Load()
	if p == nil {
		return nil
	}
	for i := range p.ops {
		if ks, ok := p.ops[i].op.(operator.KeyedStater); ok {
			return ks.KeyedState()
		}
	}
	return nil
}

// ExportKeyRange serialises and removes the keyed state in [lo, hi) from
// this instance. The caller must have paused the executor (PauseExec):
// the store is executor-owned and the removal must be atomic against
// tuple processing. A nil return with nil error means the operator keeps
// no keyed state (routing-only split).
func (n *Node) ExportKeyRange(lo, hi string) ([]byte, error) {
	p := n.pipe.Load()
	if p == nil {
		return nil, fmt.Errorf("node %s: key-range export without a hosted slot", n.id)
	}
	if p.keyedGroup == nil {
		return nil, fmt.Errorf("node %s: slot %s hosts no keyed instance", n.id, p.slot)
	}
	ks := n.keyedState()
	if ks == nil {
		return nil, nil
	}
	blob := ks.ExportRange(lo, hi)
	ks.DeleteRange(lo, hi)
	// Deletions are invisible to the operator's delta tracker, so a delta
	// checkpoint built after the export would resurrect the moved keys on
	// restore. Force the next checkpoint to be a full base blob.
	n.mu.Lock()
	n.ckptBase = 0
	n.ckptChainLen = 0
	n.mu.Unlock()
	n.jot("keyed.export", 0, fmt.Sprintf("[%s,%s)", lo, hi))
	return blob, nil
}

// ImportKeyRange merges a shipped key range into this instance's keyed
// state. The caller must have paused the executor. Nil data is the
// routing-only case and is a no-op.
func (n *Node) ImportKeyRange(data []byte) error {
	p := n.pipe.Load()
	if p == nil {
		return fmt.Errorf("node %s: key-range import without a hosted slot", n.id)
	}
	if len(data) > 0 {
		ks := n.keyedState()
		if ks == nil {
			return fmt.Errorf("node %s: slot %s has no keyed state to import into", n.id, p.slot)
		}
		if err := ks.ImportRange(data); err != nil {
			return err
		}
	}
	// Imported keys are likewise invisible to the delta baseline: rebase.
	n.mu.Lock()
	n.ckptBase = 0
	n.ckptChainLen = 0
	n.mu.Unlock()
	return nil
}

// KeyRangeMedian returns the median resident key strictly inside [lo, hi)
// — the cut point a split hands the upper half at. The caller must have
// paused the executor. ok is false when fewer than two keys reside in the
// range (nothing to split) or the operator keeps no keyed state.
func (n *Node) KeyRangeMedian(lo, hi string) (string, bool) {
	ks := n.keyedState()
	if ks == nil {
		return "", false
	}
	count := 0
	ks.Range(lo, hi, func(string, []byte) bool { count++; return true })
	if count < 2 {
		return "", false
	}
	var median string
	i := 0
	ks.Range(lo, hi, func(k string, _ []byte) bool {
		if i == count/2 {
			median = k
			return false
		}
		i++
		return true
	})
	// The cut must fall strictly inside the range: a median equal to lo
	// would produce an empty lower half and an invalid duplicate bound.
	if median == lo {
		return "", false
	}
	return median, true
}

// KeyRangeLen counts the resident keys in [lo, hi) — the split planner's
// signal for which of a donor's owned ranges carries the most state (and,
// under per-key load, the most traffic). Zero when the operator keeps no
// keyed state.
func (n *Node) KeyRangeLen(lo, hi string) int {
	ks := n.keyedState()
	if ks == nil {
		return 0
	}
	count := 0
	ks.Range(lo, hi, func(string, []byte) bool { count++; return true })
	return count
}

// KeyRangeGen reports how many key-range imports this node has completed;
// the region polls it after shipping a range to learn the import landed.
func (n *Node) KeyRangeGen() uint64 { return n.keyRangeGen.Load() }

// SendKeyRange ships an exported key range to the recipient instance's
// phone over the region WiFi (cellular fallback), charging the transfer
// like any relay. Returns false when both media fail.
func (n *Node) SendKeyRange(to simnet.NodeID, m KeyRangeMsg) bool {
	size := len(m.State)
	if size == 0 {
		size = 32 // routing-only control message
	}
	return n.relay(to, simnet.ClassTransfer, size, m)
}

// handleKeyRangeIn lands a shipped key range on the recipient: import
// under a private executor pause (the state store is executor-owned),
// then bump the import generation the region is polling.
func (n *Node) handleKeyRangeIn(m KeyRangeMsg) {
	n.PauseExec()
	err := n.ImportKeyRange(m.State)
	n.ResumeExec()
	if err != nil {
		n.logf("%s: key-range import %s [%s,%s): %v", n.id, m.Logical, m.Lo, m.Hi, err)
		return
	}
	n.keyRangeGen.Add(1)
	n.jot("keyed.import", 0, fmt.Sprintf("%s [%s,%s)", m.Logical, m.Lo, m.Hi))
}

// rerouteToOwner relays a tuple that reached this keyed instance for a
// key range it no longer owns (queued before a table flip, or a straggler
// delivery) to the current owner's slot primary. The tuple arrives on the
// recipient's reroute pseudo-queue, outside edge sequencing; duplicate
// suppression for the rare double-delivery rests on sink-side dedup.
func (n *Node) rerouteToOwner(p *pipeline, owner int, t *tuple.Tuple) {
	instances := p.keyedGroup.Instances()
	if owner < 0 || owner >= len(instances) {
		n.logf("%s: reroute to out-of-range instance %d", n.id, owner)
		return
	}
	inst := instances[owner]
	slot := n.graph.SlotOf(inst)
	target, ok := n.resolvePrimary(slot)
	if !ok {
		n.logf("%s: reroute: no primary for %s", n.id, slot)
		return
	}
	m := StreamMsg{FromSlot: rerouteSlot, ToSlot: slot, ToOp: inst, Item: tuple.DataItem(t)}
	if n.curTrace.ID != 0 {
		m.Trace = n.curTrace
	}
	n.relay(target, simnet.ClassData, t.Size, m)
}
