package node

import (
	"fmt"
	"sync/atomic"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/checkpoint"
	"mobistreams/internal/ft"
	"mobistreams/internal/operator"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
	"mobistreams/internal/wire"
)

// dispatchLoop drains the endpoint inbox. Cheap data-plane work (stream
// enqueue, checkpoint block assembly) happens inline; blocking control work
// is forwarded to the control goroutine.
func (n *Node) dispatchLoop() {
	defer n.wg.Done()
	inbox := n.cfg.Endpoint.Inbox()
	for {
		select {
		case m := <-inbox:
			n.dispatch(m)
		case <-n.stopCh:
			return
		}
	}
}

// ctrlBuffer is the control queue depth; control traffic is low-rate.
const ctrlBuffer = 4096

func (n *Node) dispatch(m simnet.Message) {
	// Every arrival costs receive energy (WiFi and cellular alike): a
	// phone that mostly listens — checkpoint broadcasts, preserved source
	// replicas, replicated tuples — still drains real battery, and the
	// scheduler's risk telemetry depends on that drain being modelled.
	if m.Size > 0 && !n.cfg.Phone.DrainRx(m.Size) {
		n.logf("%s: battery dead on receive", n.id)
		n.Fail()
		return
	}
	switch m.Class {
	case simnet.ClassData, simnet.ClassReplication, simnet.ClassRecovery:
		switch p := m.Payload.(type) {
		case StreamMsg:
			n.enqueueStream(p)
		case BatchMsg:
			n.enqueueStreamBatch(p)
		case InterRegionMsg:
			if n.cfg.OnIngest != nil {
				n.cfg.OnIngest(p.SrcOp, p.Value, p.Size, p.Kind)
			}
		default:
			// Recovery-control requests (blob fetches, resend requests)
			// share the recovery class with resent data; route them to
			// the control goroutine.
			select {
			case n.ctrlCh() <- m:
			case <-n.stopCh:
			}
		}
	case simnet.ClassCode:
		// Operator code shipping is modelled by its transfer cost only.
	case simnet.ClassPreserve:
		if pm, ok := m.Payload.(PreserveMsg); ok {
			n.cfg.Store.AppendSourceReplica(pm.Version, pm.Source, pm.T)
		}
	case simnet.ClassCheckpoint:
		switch p := m.Payload.(type) {
		case broadcast.BlockMsg:
			n.recv.OnBlock(p)
		case broadcast.FillMsg:
			n.recv.OnFill(p)
		case DistBlobMsg:
			n.cfg.Store.PutBlob(p.Blob)
		}
	default:
		select {
		case n.ctrlCh() <- m:
		case <-n.stopCh:
		}
	}
}

// ctrlCh lazily builds the control channel (kept out of New for zero-value
// friendliness of tests constructing partial nodes).
func (n *Node) ctrlCh() chan simnet.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ctrl == nil {
		n.ctrl = make(chan simnet.Message, ctrlBuffer)
	}
	return n.ctrl
}

// controlLoop serves bitmap queries, controller commands and peer recovery
// requests.
func (n *Node) controlLoop() {
	defer n.wg.Done()
	ch := n.ctrlCh()
	for {
		select {
		case m := <-ch:
			n.handleControl(m)
		case <-n.stopCh:
			return
		}
	}
}

func (n *Node) handleControl(m simnet.Message) {
	switch p := m.Payload.(type) {
	case broadcast.QueryMsg:
		bm := n.recv.Bitmap(p)
		n.cfg.WiFi.Respond(m, n.id, simnet.ClassBitmap, broadcast.BitmapWireBytes(p.Total), bm)
	case Command:
		n.handleCommand(m, p)
	case FetchBlobReq:
		n.handleFetchBlob(m, p)
	case ResendReq:
		n.injectCmd(execCmd{resendTo: p.Downstream, after: p.After})
	case TruncateMsg:
		n.cfg.Store.TruncateEdge(p.Downstream, p.Upto)
	case TransferMsg:
		n.handleTransferIn(m.From, p)
	case KeyRangeMsg:
		n.handleKeyRangeIn(p)
	default:
		n.logf("%s: unhandled control payload %T", n.id, m.Payload)
	}
}

func (n *Node) handleCommand(m simnet.Message, c Command) {
	switch c.Op {
	case CmdToken:
		n.InjectToken(c.Version)
	case CmdSnapshot:
		n.injectCmd(execCmd{snapshot: c.Version})
	case CmdCommit:
		n.handleCommit(c.Version)
	case CmdPause:
		n.PauseExec()
		n.respondOK(m)
	case CmdResume:
		n.ResumeExec()
		n.respondOK(m)
	case CmdRestore:
		err := n.RestoreTo(c.Version)
		n.mu.Lock()
		slot := n.slot
		n.mu.Unlock()
		r := Report{Type: RepRestored, Phone: n.id, Slot: slot, Version: c.Version}
		if err != nil {
			r.Err = err.Error()
		}
		n.report(r)
	case CmdReplay:
		n.ReplayFrom(c.Version, c.Epoch)
	case CmdPromote:
		n.Promote()
	case CmdHandoff:
		n.HandoffTo(c.Target)
	case CmdMigrate:
		n.MigrateTo(c.Target)
	case CmdFetchRestore:
		n.fetchRestore(c)
	case CmdPing:
		// A slot-carrying ping is only answered by the slot's actual
		// host: a phone that vacated the slot (lost migration, stale
		// placement) stays silent, which is what lets the controller
		// detect a stranded slot and re-host it.
		if c.Slot == "" || c.Slot == n.fetchSlot() {
			n.respondOK(m)
		}
	default:
		n.logf("%s: unknown command %v", n.id, c.Op)
	}
}

func (n *Node) respondOK(m simnet.Message) {
	if m.Reply == nil {
		return
	}
	if n.cfg.Cell != nil {
		n.cfg.Cell.Respond(m, n.id, simnet.ClassControl, 16, "ok")
	}
}

// handleCommit applies a committed checkpoint version: garbage-collect, and
// under input preservation tell upstream slots how far they can truncate.
func (n *Node) handleCommit(v uint64) {
	n.jot("ckpt.commit", v, "")
	n.cfg.Store.Commit(v)
	n.recv.DropBefore(v)
	if !n.cfg.Scheme.PreservesAtEdges() {
		return
	}
	n.mu.Lock()
	hw := n.hwAt[v]
	for ver := range n.hwAt {
		if ver < v {
			delete(n.hwAt, ver)
		}
	}
	slot := n.slot
	ups := append([]string(nil), n.graph.SlotUpstreams(slot)...)
	n.mu.Unlock()
	if hw == nil {
		return
	}
	for _, up := range ups {
		if target, ok := n.resolvePrimary(up); ok {
			n.cfg.WiFi.Unicast(n.id, target, simnet.ClassControl, 32, TruncateMsg{Downstream: slot, Upto: hw[up]})
		}
	}
}

// handleFetchBlob serves a peer's recovery request for a checkpoint blob.
// The served blob is the materialised full state — a requester must not
// depend on holding this store's chain links — and the response is charged
// at that full size.
func (n *Node) handleFetchBlob(m simnet.Message, req FetchBlobReq) {
	blob, err := n.cfg.Store.MaterializeBlob(req.Version, req.Slot)
	if m.Reply == nil {
		return
	}
	if err != nil {
		n.cfg.WiFi.Respond(m, n.id, simnet.ClassRecovery, 16, nil)
		return
	}
	n.cfg.WiFi.Respond(m, n.id, simnet.ClassRecovery, blob.Size, blob)
}

// persistLoop persists checkpoint blobs asynchronously: MobiStreams
// disseminates by broadcast to every peer; dist-n unicasts to its assigned
// peers. The executor keeps processing while this runs (§III-B).
func (n *Node) persistLoop() {
	defer n.wg.Done()
	for {
		select {
		case blob := <-n.persistCh:
			if !n.cfg.Checkpoint.FullOnly {
				// Incremental-async: the flash write rides this goroutine,
				// outside the executor's stop-the-world window. (FullOnly
				// already charged it inside the pause.)
				n.clk.Sleep(n.cfg.Phone.FlashWriteTime(blob.Size))
			}
			if n.cfg.Scheme.Kind == ft.MS {
				peers := n.livePeers()
				st := broadcast.Disseminate(n.cfg.WiFi, n.clk, n.id, peers, blob, n.bcfg)
				n.cfg.Phone.DrainTx(int(st.UDPBytes + st.TCPBytes))
				n.report(Report{Type: RepPersisted, Phone: n.id, Slot: blob.Slot, Version: blob.Version, Replicas: len(st.Complete)})
			}
		case <-n.stopCh:
			return
		}
	}
}

func (n *Node) livePeers() []simnet.NodeID {
	if n.cfg.Peers == nil {
		return nil
	}
	return n.cfg.Peers()
}

// PauseExec stops the executor at the next tuple boundary and waits (in
// wall time, bounded) until it parks.
func (n *Node) PauseExec() {
	n.mu.Lock()
	n.paused = true
	n.mu.Unlock()
	n.cond.Broadcast()
	deadline := time.Now().Add(5 * time.Second)
	n.mu.Lock()
	for !n.execParked && n.running && time.Now().Before(deadline) {
		n.mu.Unlock()
		time.Sleep(200 * time.Microsecond)
		n.mu.Lock()
	}
	n.mu.Unlock()
}

// ResumeExec restarts the executor and reopens the stream path after a
// controller-driven restore.
func (n *Node) ResumeExec() {
	n.mu.Lock()
	n.paused = false
	n.dropStream = false
	n.mu.Unlock()
	n.cond.Broadcast()
}

// Promote turns a rep-2 standby into the primary: it starts emitting.
func (n *Node) Promote() {
	if n.role.CompareAndSwap(int32(RoleStandby), int32(RolePrimary)) {
		n.jot("node.promote", 0, "")
	}
}

// RestoreTo reloads the node's operators from the local copy of version v
// (v = 0 resets to initial state). The executor must be paused. This is
// the parallel, local-read restoration that makes MobiStreams recovery
// scale (§III-D). A delta checkpoint restores by materialising its chain
// (base + patches); a torn local chain falls back to fetching the
// materialised state from a live peer.
func (n *Node) RestoreTo(v uint64) error {
	n.mu.Lock()
	slot := n.slot
	n.mu.Unlock()
	if slot == "" {
		return fmt.Errorf("node %s: restore on idle node", n.id)
	}
	var blob *checkpoint.Blob
	if v > 0 {
		blob = n.loadRestoreBlob(v, slot)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if v > 0 && blob == nil {
		// Still close the stream door: the region-wide restore proceeds on
		// the peers, and stale pre-failure traffic must not leak in.
		n.dropStream = true
		return fmt.Errorf("node %s: no usable chain for %s v%d", n.id, slot, v)
	}
	err := n.installBlobLocked(blob)
	// Until the controller resumes the region, every peer is paused: any
	// stream arrival in this window is stale pre-failure traffic from a
	// sender that has not yet restored, and would poison the reset dedup
	// state against the upcoming replay. Drop it at the door.
	n.dropStream = true
	if err == nil {
		n.jot("node.restore", v, slot)
	}
	return err
}

// installBlobLocked rebuilds operators and runtime state from a blob (nil
// means initial state), compiling a fresh pipeline and swapping it in
// atomically. Caller holds n.mu.
func (n *Node) installBlobLocked(blob *checkpoint.Blob) error {
	// Output emitted before the rewind is invalid after it: the restored
	// outSeq re-emits those edge sequences, so pending batches are
	// discarded and in-flight delivery retries observe the generation
	// bump and abort rather than landing stale.
	atomic.AddUint64(&n.sendGen, 1)
	n.batch.discardAll()
	fresh := make([]operator.Operator, 0, len(n.opIDs))
	for _, id := range n.opIDs {
		fresh = append(fresh, n.cfg.Registry.New(id))
	}
	rt := runtimeState{OutSeq: map[string]uint64{}, InHW: map[string]uint64{}}
	if blob != nil {
		if err := checkpoint.RestoreBlob(blob, fresh); err != nil {
			return err
		}
		if len(blob.Runtime) > 0 {
			wrt, err := wire.DecodeRuntime(blob.Runtime)
			if err != nil {
				return fmt.Errorf("node %s: decode runtime: %w", n.id, err)
			}
			rt = runtimeState{OutSeq: wrt.OutSeq, InHW: wrt.InHW, LogVersion: wrt.LogVersion}
		}
	}
	if rt.OutSeq == nil {
		rt.OutSeq = map[string]uint64{}
	}
	if rt.InHW == nil {
		rt.InHW = map[string]uint64{}
	}
	p := n.compilePipeline(n.slot, n.opIDs, fresh)
	p.setCounters(rt.OutSeq, rt.InHW)
	n.pipe.Store(p)
	n.logVersion.Store(rt.LogVersion)
	for name, q := range n.queues {
		if name == externalSlot {
			// Fresh external input queued during the outage was never
			// processed (hence never preserved): keep it, so it runs
			// after the replayed log. Stale in-band markers (tokens of
			// the aborted checkpoint) are dropped.
			var kept []queued
			for _, it := range q.items[q.head:] {
				if it.item.Tuple != nil {
					kept = append(kept, it)
				}
			}
			q.items = kept
			q.head = 0
			q.stalled = false
			continue
		}
		q.reset()
		q.lastEnq = rt.InHW[name]
	}
	n.cmds = nil
	// The freshly built operators carry no delta baselines, so the next
	// checkpoint must be a full base blob.
	n.ckptBase = 0
	n.ckptChainLen = 0
	n.align = checkpoint.NewAlignment(n.alignUpstreams)
	n.replaySeen = make(map[uint64]map[string]bool)
	n.suppress.Store(n.isSink)
	n.unreachable = make(map[simnet.NodeID]bool)
	n.urgentReported = make(map[string]bool)
	return nil
}

// ReplayFrom prepends the preserved input since version v to the external
// queue (catch-up, §III-D), terminated by a replay-end marker for epoch.
func (n *Node) ReplayFrom(v uint64, epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	q, ok := n.queues[externalSlot]
	if !ok {
		return
	}
	var replay []queued
	for _, src := range n.sourceOps {
		for _, t := range n.cfg.Store.SourceLogsFrom(v, src) {
			c := t.Clone()
			c.Replay = true
			replay = append(replay, queued{toOp: src, item: tuple.DataItem(c)})
		}
	}
	replay = append(replay, queued{item: tuple.MarkerItem(tuple.Marker{Kind: tuple.MarkerReplayEnd, Version: epoch})})
	pending := q.items[q.head:]
	q.items = append(replay, pending...)
	q.head = 0
	n.cond.Signal()
}

// fetchRestore is the dist-n/local recovery path: fetch the blob for this
// node's slot from a peer (or local storage), restore, then ask every
// upstream to resend retained output past the restored watermarks.
func (n *Node) fetchRestore(c Command) {
	n.PauseExec()
	var blob *checkpoint.Blob
	if c.Target == n.id {
		if b, err := n.cfg.Store.MaterializeBlob(c.Version, n.fetchSlot()); err == nil {
			blob = b
		}
	} else if c.Version > 0 {
		reply, err := n.cfg.WiFi.Request(n.id, c.Target, simnet.ClassRecovery, 32, FetchBlobReq{Slot: n.fetchSlot(), Version: c.Version})
		if err == nil {
			select {
			case msg := <-reply:
				if b, ok := msg.Payload.(*checkpoint.Blob); ok {
					blob = b
				}
			case <-n.clk.After(60 * time.Second):
			}
		}
	}
	if blob == nil && c.Version > 0 {
		n.report(Report{Type: RepRestored, Phone: n.id, Slot: n.fetchSlot(), Version: c.Version, Err: "blob unavailable"})
		n.ResumeExec()
		return
	}
	n.mu.Lock()
	err := n.installBlobLocked(blob)
	// Classic schemes have no catch-up suppression window; duplicates are
	// handled by edge-sequence dedup instead.
	n.suppress.Store(false)
	var hw map[string]uint64
	if p := n.pipe.Load(); p != nil {
		hw = p.inHWMap()
	}
	slot := n.slot
	ups := append([]string(nil), n.graph.SlotUpstreams(slot)...)
	n.mu.Unlock()
	r := Report{Type: RepRestored, Phone: n.id, Slot: slot, Version: c.Version}
	if err != nil {
		r.Err = err.Error()
	}
	n.report(r)
	for _, up := range ups {
		if target, ok := n.resolvePrimary(up); ok {
			n.cfg.WiFi.Unicast(n.id, target, simnet.ClassRecovery, 32, ResendReq{Downstream: slot, After: hw[up]})
		}
	}
	n.ResumeExec()
}

// fetchSlot reads the node's slot under lock (for recovery paths running
// off the executor goroutine).
func (n *Node) fetchSlot() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slot
}

// HandoffTo transfers the node's live state to a replacement phone and
// demotes this node to idle (§III-E). For a departed phone the WiFi leg
// fails instantly and the transfer rides cellular — the emergency path.
func (n *Node) HandoffTo(target simnet.NodeID) { n.handoff(target) }

// MigrateTo is the planned live-migration path: the scheduler moves the
// slot off this (still in-range, still healthy) phone, so the state blob
// ships over the cheap region WiFi, falling back to cellular only if the
// medium fails mid-transfer. Mechanically it is the same pause → snapshot →
// vacate → relay sequence as a departure handoff.
func (n *Node) MigrateTo(target simnet.NodeID) { n.handoff(target) }

func (n *Node) handoff(target simnet.NodeID) {
	n.jot("migrate.start", 0, string(target))
	n.PauseExec()
	// Ship any coalesced emissions still waiting on the latency bound:
	// after the handoff this node no longer owns their edge sequences.
	n.batch.flushAll()
	n.mu.Lock()
	slot := n.slot
	n.mu.Unlock()
	if slot == "" {
		n.ResumeExec()
		return
	}
	blob, err := n.snapshot(transferVersion)
	if err != nil {
		n.logf("%s: handoff snapshot: %v", n.id, err)
		n.ResumeExec()
		return
	}
	// Atomically: collect queued-but-unprocessed items for the transfer,
	// vacate the slot and start relaying stragglers to the replacement —
	// so nothing arriving during the (slow, cellular) transfer is lost.
	n.mu.Lock()
	var pending []PendingItem
	pendingBytes := 0
	for name, q := range n.queues {
		for _, it := range q.items[q.head:] {
			pending = append(pending, PendingItem{FromSlot: name, FromOp: it.fromOp, ToOp: it.toOp, EdgeSeq: it.edgeSeq, Item: it.item})
			pendingBytes += it.item.WireSize()
		}
		// Parked out-of-order arrivals (edge-preserving schemes) travel
		// too: they were already delivered by their upstream, which will
		// never resend them. The receiver re-parks them until their gap
		// fills from relayed stragglers.
		for _, it := range q.park {
			pending = append(pending, PendingItem{FromSlot: name, FromOp: it.fromOp, ToOp: it.toOp, EdgeSeq: it.edgeSeq, Item: it.item})
			pendingBytes += it.item.WireSize()
		}
	}
	n.slot = ""
	n.qOrder = nil
	n.queues = make(map[string]*upQueue)
	n.pipe.Store((*pipeline)(nil))
	n.role.Store(int32(RoleIdle))
	n.paused = false
	n.forwardTo = target
	n.mu.Unlock()
	n.cond.Broadcast()
	size := blob.Size + pendingBytes
	n.relay(target, simnet.ClassTransfer, size, TransferMsg{Slot: slot, Blob: blob, Pending: pending})
	n.report(Report{Type: RepHandoffDone, Phone: n.id, Slot: slot})
}

// handleTransferIn activates an idle node with a departing peer's state.
// A transfer is honoured only while the region's placement still points at
// the sender: if the controller has meanwhile given up on the migration and
// re-hosted the slot through recovery, a late-arriving blob would activate
// a second primary for a slot that already has one.
func (n *Node) handleTransferIn(from simnet.NodeID, msg TransferMsg) {
	if cur, ok := n.resolvePrimary(msg.Slot); ok && cur != from && cur != n.id {
		n.logf("%s: stale transfer of %s from %s (placement now %s)", n.id, msg.Slot, from, cur)
		return
	}
	n.mu.Lock()
	if n.slot != "" {
		n.mu.Unlock()
		n.logf("%s: transfer-in while hosting %s", n.id, n.slot)
		return
	}
	n.configureSlot(msg.Slot, n.opIDsForSlot(msg.Slot))
	n.role.Store(int32(RolePrimary))
	err := n.installBlobLocked(msg.Blob)
	// A handed-off node resumes mid-stream; it does not suppress.
	n.suppress.Store(false)
	// Re-queue the items the departing node had not yet processed.
	// installBlobLocked just reset each ordered queue's watermark to the
	// restored inHW, so routing the transferred items through the normal
	// enqueue discipline re-parks any that sit above a sequence gap —
	// relayed stragglers fill the gap instead of being dropped as
	// duplicates below a prematurely bumped watermark. External-slot
	// items bypass it (their sequence space is per-source, not per-edge).
	for _, p := range msg.Pending {
		q, ok := n.queues[p.FromSlot]
		if !ok {
			continue
		}
		if p.FromSlot == externalSlot {
			q.push(queued{fromOp: p.FromOp, toOp: p.ToOp, item: p.Item})
			continue
		}
		q.enqueue(queued{fromOp: p.FromOp, toOp: p.ToOp, edgeSeq: p.EdgeSeq, item: p.Item})
	}
	buffered := n.preBuf
	n.preBuf = nil
	n.mu.Unlock()
	if err != nil {
		n.logf("%s: transfer-in restore: %v", n.id, err)
		return
	}
	// Stragglers relayed by the departing node while the transfer was in
	// flight follow the transferred backlog.
	for _, m := range buffered {
		n.enqueueStream(m)
	}
	n.cond.Broadcast()
	n.jot("migrate.in", 0, msg.Slot)
	n.report(Report{Type: RepRestored, Phone: n.id, Slot: msg.Slot, Version: transferVersion})
}

// Activate configures an idle node to host a slot (recovery replacement).
// The caller (controller) then issues CmdRestore/CmdReplay as needed.
func (n *Node) Activate(slot string) {
	n.mu.Lock()
	n.configureSlot(slot, n.opIDsForSlot(slot))
	n.role.Store(int32(RolePrimary))
	buffered := n.preBuf
	n.preBuf = nil
	n.mu.Unlock()
	for _, m := range buffered {
		n.enqueueStream(m)
	}
	n.cond.Broadcast()
}

func (n *Node) opIDsForSlot(slot string) []string {
	return n.graph.OpsOnSlot(slot)
}

// transferVersion tags handoff blobs, which are live state outside the
// checkpoint version sequence.
const transferVersion = ^uint64(0)
