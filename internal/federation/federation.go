// Package federation shards the control plane across regions. Each region
// keeps its autonomous controller — checkpoints, recovery and migration
// never leave the region — and runs one Agent on the cellular backhaul
// overlay. Agents exchange three things over gossip: membership, compact
// telemetry rollups (a few dozen bytes standing in for a region's whole
// phone fleet), and the lead's fleet-wide aggregate, which doubles as the
// battery-risk cap broadcast. Cross-region stream traffic — one region's
// sink output feeding another region's sources — travels point-to-point in
// sequenced envelopes the receiver dedups, so backhaul retries stay
// idempotent and delivery is exactly-once.
//
// Because everything fleet-wide rides the epidemic broadcast layer, the
// lead's egress does not grow with the number of regions: publishing a cap
// to 64 regions costs the lead the same constant fan-out as publishing to
// 4. That is the sub-linear control property the federation benchmark
// measures.
package federation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mobistreams/internal/gossip"
	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/wire"
)

// Gossip method names on the backhaul overlay.
const (
	methodJoin   = "fed.join"
	methodRollup = "fed.rollup"
	methodCaps   = "fed.caps"
)

// FleetScope is the Region value the lead's aggregate rollup carries.
const FleetScope = "fleet"

// RouteFunc consumes one cross-region envelope addressed to this region.
// The payload view is only valid for the duration of the call.
type RouteFunc func(env wire.XRegionEnv)

// Config parameterises one federation agent.
type Config struct {
	// Region is the region this agent represents.
	Region string
	// Lead marks the agent that aggregates rollups and publishes fleet
	// caps. Exactly one agent per federation should set it.
	Lead bool
	// Gossip tunes the epidemic layer (Class defaults to ClassControl).
	Gossip gossip.Config
	// Journal, when non-nil, records membership, caps and dedup events.
	Journal *obs.Journal
	// Now supplies event timestamps; defaults to wall time. The benches
	// pin it for deterministic journals.
	Now func() int64
}

// Stats counts one agent's federation activity.
type Stats struct {
	// RollupsSeen counts telemetry rollups applied (stale epochs excluded).
	RollupsSeen uint64
	// StaleRollups counts rollups discarded for carrying an old epoch.
	StaleRollups uint64
	// CapsSeen counts fleet aggregates applied.
	CapsSeen uint64
	// TuplesSent and TuplesDelivered count cross-region envelopes.
	TuplesSent      uint64
	TuplesDelivered uint64
	// DupsDropped counts envelopes suppressed by the receiver's dedup —
	// the exactly-once property under backhaul retries.
	DupsDropped uint64
}

type streamKey struct {
	region, stream string
}

// Agent is one region's presence on the federation overlay.
type Agent struct {
	id  simnet.NodeID
	tr  transport.Transport
	g   *gossip.Node
	cfg Config
	now func() int64

	mu       sync.Mutex
	members  map[string]wire.Rollup
	leads    map[string]simnet.NodeID
	caps     wire.Rollup
	haveCaps bool
	ownEpoch uint64
	outSeq   map[streamKey]uint64
	seen     map[streamKey]uint64
	routes   map[string]RouteFunc
	stats    Stats
}

// NewAgent creates a federation agent on tr. Like the gossip node it owns,
// the agent does not install a transport handler: compose Handle into the
// owner's receive function.
func NewAgent(id simnet.NodeID, tr transport.Transport, cfg Config) *Agent {
	if cfg.Gossip.Class == 0 {
		cfg.Gossip.Class = simnet.ClassControl
	}
	a := &Agent{
		id:      id,
		tr:      tr,
		cfg:     cfg,
		now:     cfg.Now,
		members: make(map[string]wire.Rollup),
		leads:   make(map[string]simnet.NodeID),
		outSeq:  make(map[streamKey]uint64),
		seen:    make(map[streamKey]uint64),
		routes:  make(map[string]RouteFunc),
	}
	if a.now == nil {
		a.now = func() int64 { return time.Now().UnixNano() }
	}
	a.g = gossip.NewNode(id, tr, cfg.Gossip)
	a.g.RegisterFunc(methodJoin, a.onRollupPayload)
	a.g.RegisterFunc(methodRollup, a.onRollupPayload)
	a.g.RegisterFunc(methodCaps, a.onCapsPayload)
	return a
}

// ID reports the agent's overlay identity.
func (a *Agent) ID() simnet.NodeID { return a.id }

// Region reports the region this agent represents.
func (a *Agent) Region() string { return a.cfg.Region }

// Gossip exposes the underlying gossip node (stats, tests).
func (a *Agent) Gossip() *gossip.Node { return a.g }

// SetPeers replaces the backhaul overlay's peer set.
func (a *Agent) SetPeers(peers []simnet.NodeID) { a.g.SetPeers(peers) }

// Stats snapshots the agent's counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Join announces the region into the federation: an epoch-0 rollup that
// carries the region's name and this agent's overlay address, so every
// member learns where to send cross-region traffic.
func (a *Agent) Join() {
	ru := wire.Rollup{Region: a.cfg.Region, Lead: a.id}
	a.g.Broadcast(methodJoin, wire.AppendRollup(nil, &ru))
}

// PublishRollup gossips the region's telemetry rollup. Region and Lead
// are stamped by the agent; a zero Epoch gets the agent's own increasing
// epoch. CtrlBytes is filled from the transport's control-class egress
// when the transport exposes it.
func (a *Agent) PublishRollup(ru wire.Rollup) {
	ru.Region = a.cfg.Region
	ru.Lead = a.id
	a.mu.Lock()
	if ru.Epoch == 0 {
		a.ownEpoch++
		ru.Epoch = a.ownEpoch
	} else if ru.Epoch > a.ownEpoch {
		a.ownEpoch = ru.Epoch
	}
	a.mu.Unlock()
	if eg, ok := a.tr.(interface {
		SentBytes(simnet.Class) int64
	}); ok {
		ru.CtrlBytes = uint64(eg.SentBytes(a.cfg.Gossip.Class))
	}
	a.g.Broadcast(methodRollup, wire.AppendRollup(nil, &ru))
}

// Tick runs one gossip anti-entropy round. The lead additionally
// re-aggregates and publishes fleet caps when membership or telemetry
// changed since the last publish.
func (a *Agent) Tick() {
	a.g.Tick()
	if !a.cfg.Lead {
		return
	}
	agg := a.Aggregate()
	a.mu.Lock()
	stale := a.haveCaps && a.caps.Epoch >= agg.Epoch &&
		a.caps.Phones == agg.Phones && a.caps.Backlog == agg.Backlog &&
		a.caps.BatteryRisk == agg.BatteryRisk && a.caps.Idle == agg.Idle
	a.mu.Unlock()
	if stale || agg.Phones == 0 {
		return
	}
	a.PublishCaps(agg)
}

// Aggregate folds every member's latest rollup into the fleet scope. The
// Epoch is the sum of member epochs, so any member publishing bumps it.
func (a *Agent) Aggregate() wire.Rollup {
	a.mu.Lock()
	defer a.mu.Unlock()
	agg := wire.Rollup{Region: FleetScope, Lead: a.id}
	for _, ru := range a.members {
		agg.Epoch += ru.Epoch
		agg.Phones += ru.Phones
		agg.Idle += ru.Idle
		agg.Backlog += ru.Backlog
		agg.BatteryRisk += ru.BatteryRisk
		agg.OutTuples += ru.OutTuples
		agg.CtrlBytes += ru.CtrlBytes
	}
	return agg
}

// PublishCaps gossips a fleet aggregate to every region.
func (a *Agent) PublishCaps(agg wire.Rollup) {
	agg.Region = FleetScope
	agg.Lead = a.id
	a.g.Broadcast(methodCaps, wire.AppendRollup(nil, &agg))
}

// Caps reports the last fleet aggregate this agent received.
func (a *Agent) Caps() (wire.Rollup, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.caps, a.haveCaps
}

// Members lists the known regions, sorted.
func (a *Agent) Members() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.members))
	for r := range a.members {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// MemberRollup reports a region's latest rollup.
func (a *Agent) MemberRollup(region string) (wire.Rollup, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ru, ok := a.members[region]
	return ru, ok
}

// LeadOf reports the overlay address of a region's agent.
func (a *Agent) LeadOf(region string) (simnet.NodeID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, ok := a.leads[region]
	return id, ok
}

// RouteFunc binds a stream name to a local consumer of cross-region
// envelopes addressed to this region.
func (a *Agent) RouteFunc(stream string, fn RouteFunc) {
	a.mu.Lock()
	a.routes[stream] = fn
	a.mu.Unlock()
}

// SendTuple ships a payload to another region's agent as a sequenced
// envelope over the reliable backhaul path, returning the sequence number
// used. Redelivery (Resend) with the same sequence is suppressed at the
// receiver, so retries after a backhaul redial are idempotent.
func (a *Agent) SendTuple(toRegion, stream string, payload []byte) (uint64, error) {
	a.mu.Lock()
	dest, ok := a.leads[toRegion]
	if !ok {
		a.mu.Unlock()
		return 0, fmt.Errorf("federation: region %q not in membership", toRegion)
	}
	k := streamKey{toRegion, stream}
	a.outSeq[k]++
	seq := a.outSeq[k]
	a.stats.TuplesSent++
	a.mu.Unlock()
	return seq, a.sendEnvelope(dest, toRegion, stream, seq, payload)
}

// Resend re-ships an envelope under an explicit sequence number — the
// retry half of exactly-once. The receiver's dedup makes it a no-op if
// the original arrived.
func (a *Agent) Resend(toRegion, stream string, seq uint64, payload []byte) error {
	a.mu.Lock()
	dest, ok := a.leads[toRegion]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("federation: region %q not in membership", toRegion)
	}
	return a.sendEnvelope(dest, toRegion, stream, seq, payload)
}

func (a *Agent) sendEnvelope(dest simnet.NodeID, toRegion, stream string, seq uint64, payload []byte) error {
	env := wire.XRegionEnv{
		FromRegion: a.cfg.Region, ToRegion: toRegion,
		Stream: stream, Seq: seq, Payload: payload,
	}
	return a.tr.Tell(dest, a.cfg.Gossip.Class, wire.AppendXRegionEnv(nil, &env))
}

// Handle offers a received frame to the federation layer: gossip frames
// and cross-region envelopes are consumed; anything else is the owner's.
func (a *Agent) Handle(from simnet.NodeID, class simnet.Class, frame []byte) bool {
	if a.g.Handle(from, class, frame) {
		return true
	}
	if class != a.cfg.Gossip.Class || wire.FrameKind(frame) != wire.KindXRegion {
		return false
	}
	env, err := wire.DecodeXRegionEnv(frame)
	if err != nil {
		return true // malformed envelope: consumed, dropped
	}
	a.handleEnvelope(env)
	return true
}

func (a *Agent) handleEnvelope(env wire.XRegionEnv) {
	a.mu.Lock()
	if env.ToRegion != a.cfg.Region {
		a.mu.Unlock()
		return // misrouted; agents are not relays
	}
	k := streamKey{env.FromRegion, env.Stream}
	if env.Seq <= a.seen[k] {
		a.stats.DupsDropped++
		a.mu.Unlock()
		a.jot("fed.xregion.dup", env.Stream, env.Seq, env.FromRegion)
		return
	}
	a.seen[k] = env.Seq
	a.stats.TuplesDelivered++
	route := a.routes[env.Stream]
	a.mu.Unlock()
	if route != nil {
		route(env)
	}
}

// onRollupPayload applies a join announce or telemetry rollup.
func (a *Agent) onRollupPayload(origin simnet.NodeID, payload []byte) {
	ru, err := wire.DecodeRollup(payload)
	if err != nil || ru.Region == "" {
		return
	}
	a.mu.Lock()
	prev, known := a.members[ru.Region]
	if known && ru.Epoch < prev.Epoch {
		a.stats.StaleRollups++
		a.mu.Unlock()
		return
	}
	a.members[ru.Region] = ru
	a.leads[ru.Region] = ru.Lead
	a.stats.RollupsSeen++
	a.mu.Unlock()
	if !known {
		a.jot("fed.member", ru.Region, ru.Epoch, string(ru.Lead))
	}
}

// onCapsPayload applies the lead's fleet aggregate.
func (a *Agent) onCapsPayload(origin simnet.NodeID, payload []byte) {
	agg, err := wire.DecodeRollup(payload)
	if err != nil || agg.Region != FleetScope {
		return
	}
	a.mu.Lock()
	if a.haveCaps && agg.Epoch < a.caps.Epoch {
		a.mu.Unlock()
		return
	}
	a.caps = agg
	a.haveCaps = true
	a.stats.CapsSeen++
	a.mu.Unlock()
	a.jot("fed.caps", FleetScope, agg.Epoch, fmt.Sprintf("phones=%d risk=%d", agg.Phones, agg.BatteryRisk))
}

func (a *Agent) jot(kind, slot string, version uint64, detail string) {
	if a.cfg.Journal == nil {
		return
	}
	a.cfg.Journal.Emit(obs.Event{
		At: a.now(), Kind: kind, Node: string(a.id),
		Slot: slot, Version: version, Detail: detail,
	})
}
