package federation

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"
	"sync"
	"time"

	"mobistreams/internal/gossip"
	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/wire"
)

// This file is the federation's transport-parity demo: a hub (the lead)
// plus N region agents join the overlay, exchange telemetry rollups, the
// lead aggregates and broadcasts fleet caps, each region ships a short
// cross-region stream to its ring successor (with one injected backhaul
// retry), and the lead prints one report. The report is condition-based
// — membership complete, caps epoch reached, streams delivered — never
// byte- or round-based, so the identical text comes out of the
// single-process simulation (RunDemoSim, transport.Mesh) and the
// multi-process socket run (RunDemoLead + RunDemoRegion, transport.Socket
// over TCP/UDP). CI diffs the two.

// DemoLeadID is the hub agent's node ID in both backends.
const DemoLeadID simnet.NodeID = "lead"

// demoHubRegion is the hub's region name — cross-region report lines are
// addressed to it.
const demoHubRegion = "hub"

const (
	demoStreamReadings = "readings"
	demoStreamReport   = "demo.report"
	demoStreamDone     = "demo.done"
	// demoTuples is the per-region cross-region workload; the second
	// tuple is always resent to exercise the dedup line.
	demoTuples = 3
	// repDemoJoin is the worker→lead socket join announcement, in the
	// shared Report op space well clear of the node runtime's values.
	repDemoJoin uint8 = 120
)

func demoRegionName(i int) string { return fmt.Sprintf("r%02d", i) }

// demoIDs is the full overlay membership: the hub plus n regions, agent
// ID equal to region name for the regions.
func demoIDs(n int) []simnet.NodeID {
	ids := make([]simnet.NodeID, 0, n+1)
	ids = append(ids, DemoLeadID)
	for i := 1; i <= n; i++ {
		ids = append(ids, simnet.NodeID(demoRegionName(i)))
	}
	return ids
}

// demoRollup is region i's telemetry — fixed functions of the index so
// both backends publish identical numbers.
func demoRollup(i int) wire.Rollup {
	return wire.Rollup{
		Epoch: 1, Phones: 16 + i, Idle: i, Backlog: 2 * i,
		BatteryRisk: i % 2, OutTuples: uint64(10 * i),
	}
}

func demoPayload(from, to string, k int, seed int64) []byte {
	return []byte(fmt.Sprintf("demo/%s->%s/%d/seed=%d", from, to, k, seed))
}

func demoGossip(seed int64) gossip.Config {
	return gossip.Config{Seed: seed, LazyAfter: 8}
}

// demoRegionState is one region's receiving side: the readings count and
// running digest its report line is built from, and the shutdown flag.
type demoRegionState struct {
	mu   sync.Mutex
	recv int
	h    hash.Hash
	done bool
}

func newDemoRegionState(a *Agent) *demoRegionState {
	st := &demoRegionState{h: sha256.New()}
	a.RouteFunc(demoStreamReadings, func(env wire.XRegionEnv) {
		st.mu.Lock()
		st.recv++
		st.h.Write(env.Payload)
		st.mu.Unlock()
	})
	a.RouteFunc(demoStreamDone, func(env wire.XRegionEnv) {
		st.mu.Lock()
		st.done = true
		st.mu.Unlock()
	})
	return st
}

func (st *demoRegionState) received() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.recv
}

func (st *demoRegionState) finished() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done
}

// line renders the region's report contribution. Arrival order from a
// single ring predecessor over the reliable path is send order, so the
// chained digest is deterministic; the injected retry must have been
// dropped before the last reading arrived (FIFO), so DupsDropped is
// already final here.
func (st *demoRegionState) line(a *Agent) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return fmt.Sprintf("delivered=%d dups=%d digest=%s",
		st.recv, a.Stats().DupsDropped, hex.EncodeToString(st.h.Sum(nil)))
}

// demoLeadState collects the per-region report lines at the hub.
type demoLeadState struct {
	mu      sync.Mutex
	reports map[string]string
}

func newDemoLeadState(a *Agent) *demoLeadState {
	st := &demoLeadState{reports: make(map[string]string)}
	a.RouteFunc(demoStreamReport, func(env wire.XRegionEnv) {
		st.mu.Lock()
		st.reports[env.FromRegion] = string(env.Payload)
		st.mu.Unlock()
	})
	return st
}

func (st *demoLeadState) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.reports)
}

// writeDemoReport prints the hub's view once every condition has been
// met. CtrlBytes is deliberately omitted everywhere: it measures the
// backend, not the federation, and would break sim/socket parity.
func writeDemoReport(w io.Writer, n int, a *Agent, st *demoLeadState) {
	fmt.Fprintf(w, "federation demo: %d regions\n", n)
	for i := 1; i <= n; i++ {
		region := demoRegionName(i)
		ru, _ := a.MemberRollup(region)
		fmt.Fprintf(w, "member %s: phones=%d idle=%d backlog=%d risk=%d out=%d\n",
			region, ru.Phones, ru.Idle, ru.Backlog, ru.BatteryRisk, ru.OutTuples)
	}
	caps, _ := a.Caps()
	fmt.Fprintf(w, "caps: epoch=%d phones=%d idle=%d backlog=%d risk=%d out=%d\n",
		caps.Epoch, caps.Phones, caps.Idle, caps.Backlog, caps.BatteryRisk, caps.OutTuples)
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := 1; i <= n; i++ {
		region := demoRegionName(i)
		fmt.Fprintf(w, "xregion %s: %s\n", region, st.reports[region])
	}
}

// sendDemoReadings ships region i's ring workload to its successor,
// resending the second envelope the way a backhaul redial would.
func sendDemoReadings(a *Agent, i, n int, seed int64) error {
	succ := demoRegionName(i%n + 1)
	for k := 1; k <= demoTuples; k++ {
		payload := demoPayload(demoRegionName(i), succ, k, seed)
		seq, err := a.SendTuple(succ, demoStreamReadings, payload)
		if err != nil {
			return err
		}
		if k == 2 {
			if err := a.Resend(succ, demoStreamReadings, seq, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunDemoSim runs the whole demo single-process on the deterministic
// in-memory mesh and writes the report to w.
func RunDemoSim(regions int, seed int64, w io.Writer) error {
	n := regions
	if n < 2 {
		return fmt.Errorf("federation demo: need at least 2 regions, got %d", n)
	}
	mesh := transport.NewMesh(seed)
	ids := demoIDs(n)
	agents := make([]*Agent, len(ids))
	var at int64
	for i, id := range ids {
		mem := mesh.Attach(id)
		region := demoHubRegion
		if i > 0 {
			region = string(id)
		}
		a := NewAgent(id, mem, Config{
			Region: region,
			Lead:   i == 0,
			Gossip: demoGossip(seed),
			Now:    func() int64 { at++; return at },
		})
		a.SetPeers(ids)
		agents[i] = a
		mem.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
			a.Handle(from, class, frame)
		})
	}
	leadSt := newDemoLeadState(agents[0])
	regionSts := make([]*demoRegionState, n+1)
	for i := 1; i <= n; i++ {
		regionSts[i] = newDemoRegionState(agents[i])
	}

	settle := func(what string, done func() bool) error {
		mesh.Drain()
		for round := 0; round < 400; round++ {
			if done() {
				return nil
			}
			for _, a := range agents {
				a.Tick()
			}
			mesh.Drain()
		}
		return fmt.Errorf("federation demo: %s did not converge", what)
	}

	for _, a := range agents {
		a.Join()
	}
	if err := settle("membership", func() bool {
		for _, a := range agents {
			if len(a.Members()) != n+1 {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	for i := 1; i <= n; i++ {
		agents[i].PublishRollup(demoRollup(i))
	}
	if err := settle("caps", func() bool {
		for _, a := range agents {
			caps, ok := a.Caps()
			if !ok || caps.Epoch < uint64(n) {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	for i := 1; i <= n; i++ {
		if err := sendDemoReadings(agents[i], i, n, seed); err != nil {
			return err
		}
	}
	if err := settle("readings", func() bool {
		for i := 1; i <= n; i++ {
			if regionSts[i].received() != demoTuples {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}
	for i := 1; i <= n; i++ {
		line := regionSts[i].line(agents[i])
		if _, err := agents[i].SendTuple(demoHubRegion, demoStreamReport, []byte(line)); err != nil {
			return err
		}
	}
	if err := settle("reports", func() bool { return leadSt.count() == n }); err != nil {
		return err
	}
	writeDemoReport(w, n, agents[0], leadSt)
	for i := 1; i <= n; i++ {
		if _, err := agents[0].SendTuple(demoRegionName(i), demoStreamDone, []byte("bye")); err != nil {
			return err
		}
	}
	return settle("shutdown", func() bool {
		for i := 1; i <= n; i++ {
			if !regionSts[i].finished() {
				return false
			}
		}
		return true
	})
}

// tickUntil drives one agent's anti-entropy on a real-time cadence until
// the condition holds — the socket backend's counterpart to the sim's
// settle loop.
func tickUntil(a *Agent, timeout time.Duration, what string, done func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if done() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("federation demo: %s did not converge within %v", what, timeout)
		}
		a.Tick()
		time.Sleep(3 * time.Millisecond)
	}
}

// RunDemoLead runs the hub over real sockets: listen, wait for the region
// processes (RunDemoRegion) to join, hand out the address book, and print
// the report once every region has delivered its line.
func RunDemoLead(listen string, regions int, seed int64, timeout time.Duration, w io.Writer) error {
	s, err := transport.NewSocket(DemoLeadID, listen, "")
	if err != nil {
		return err
	}
	defer s.Close()
	return RunDemoLeadOn(s, regions, seed, timeout, w)
}

// RunDemoLeadOn runs the hub protocol over an already-bound socket (the
// parity test binds first so the regions know where to dial).
func RunDemoLeadOn(s *transport.Socket, regions int, seed int64, timeout time.Duration, w io.Writer) error {
	n := regions
	if n < 2 {
		return fmt.Errorf("federation demo: need at least 2 regions, got %d", n)
	}
	if err := s.WaitPeers(n, timeout); err != nil {
		return err
	}
	ids := s.Peers()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	want := demoIDs(n)
	for i, id := range ids {
		if id != want[i+1] {
			return fmt.Errorf("federation demo: joined peer %q, want %q", id, want[i+1])
		}
	}
	book := make([]wire.AssignPeer, 0, n+1)
	book = append(book, wire.AssignPeer{ID: DemoLeadID, Addr: s.Info().Addr})
	for _, id := range ids {
		addr, _ := s.PeerAddr(id)
		book = append(book, wire.AssignPeer{ID: id, Addr: addr})
	}

	var at int64
	a := NewAgent(DemoLeadID, s, Config{
		Region: demoHubRegion,
		Lead:   true,
		Gossip: demoGossip(seed),
		Now:    func() int64 { at++; return at },
	})
	a.SetPeers(want)
	leadSt := newDemoLeadState(a)
	s.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		a.Handle(from, class, frame)
	})

	assign := wire.Assign{Lead: DemoLeadID, Seed: seed, Peers: book}
	frame := wire.AppendAssign(make([]byte, 0, wire.SizeAssign(&assign)), &assign)
	for _, id := range ids {
		if err := s.Tell(id, simnet.ClassControl, frame); err != nil {
			return fmt.Errorf("federation demo: assign %s: %w", id, err)
		}
	}

	a.Join()
	if err := tickUntil(a, timeout, "membership", func() bool {
		return len(a.Members()) == n+1
	}); err != nil {
		return err
	}
	if err := tickUntil(a, timeout, "caps", func() bool {
		caps, ok := a.Caps()
		return ok && caps.Epoch >= uint64(n)
	}); err != nil {
		return err
	}
	if err := tickUntil(a, timeout, "reports", func() bool {
		return leadSt.count() == n
	}); err != nil {
		return err
	}
	writeDemoReport(w, n, a, leadSt)
	for i := 1; i <= n; i++ {
		if _, err := a.SendTuple(demoRegionName(i), demoStreamDone, []byte("bye")); err != nil {
			return err
		}
	}
	return nil
}

// RunDemoRegion runs one region process: listen, join the lead, receive
// the address book, and play the region's part until the lead's shutdown
// envelope arrives. The workload seed comes from the lead's assignment,
// so the whole fleet needs only the join address.
func RunDemoRegion(id simnet.NodeID, listen, join string, timeout time.Duration) error {
	s, err := transport.NewSocket(id, listen, "")
	if err != nil {
		return err
	}
	defer s.Close()
	s.AddPeer(DemoLeadID, join)

	// The agent can only be built once the assignment arrives (it
	// carries the gossip seed), so the handler buffers behind a small
	// state machine: pre-assign frames other than the assignment are
	// dropped — anti-entropy repairs anything a region misses while
	// bootstrapping.
	var (
		mu     sync.Mutex
		a      *Agent
		st     *demoRegionState
		seed   int64
		nPeers int
		ready  = make(chan struct{})
	)
	s.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
		mu.Lock()
		ag := a
		mu.Unlock()
		if ag != nil {
			ag.Handle(from, class, frame)
			return
		}
		if class != simnet.ClassControl || wire.FrameKind(frame) != wire.KindAssign {
			return
		}
		assign, err := wire.DecodeAssign(frame)
		if err != nil {
			return
		}
		var at int64
		ids := make([]simnet.NodeID, 0, len(assign.Peers))
		for _, p := range assign.Peers {
			ids = append(ids, p.ID)
			if p.ID != id && p.ID != DemoLeadID {
				s.AddPeer(p.ID, p.Addr)
			}
		}
		ag = NewAgent(id, s, Config{
			Region: string(id),
			Gossip: demoGossip(assign.Seed),
			Now:    func() int64 { at++; return at },
		})
		ag.SetPeers(ids)
		mu.Lock()
		a = ag
		st = newDemoRegionState(ag)
		seed = assign.Seed
		nPeers = len(assign.Peers) - 1
		mu.Unlock()
		close(ready)
	})

	// Announce to the lead; the socket handshake carries our dialable
	// address, WaitPeers counts us, and the assignment comes back.
	rp := wire.Report{Type: repDemoJoin, Phone: id}
	if err := s.Tell(DemoLeadID, simnet.ClassControl, wire.AppendReport(nil, &rp)); err != nil {
		return fmt.Errorf("federation demo: join %s: %w", join, err)
	}
	select {
	case <-ready:
	case <-time.After(timeout):
		return fmt.Errorf("federation demo: no assignment within %v", timeout)
	}
	mu.Lock()
	ag, rst, n := a, st, nPeers
	wseed := seed
	mu.Unlock()

	var i int
	if _, err := fmt.Sscanf(string(id), "r%02d", &i); err != nil {
		return fmt.Errorf("federation demo: region id %q not rNN: %w", id, err)
	}

	ag.Join()
	if err := tickUntil(ag, timeout, "membership", func() bool {
		return len(ag.Members()) == n+1
	}); err != nil {
		return err
	}
	ag.PublishRollup(demoRollup(i))
	if err := tickUntil(ag, timeout, "caps", func() bool {
		caps, ok := ag.Caps()
		return ok && caps.Epoch >= uint64(n)
	}); err != nil {
		return err
	}
	if err := sendDemoReadings(ag, i, n, wseed); err != nil {
		return err
	}
	if err := tickUntil(ag, timeout, "readings", func() bool {
		return rst.received() == demoTuples
	}); err != nil {
		return err
	}
	if _, err := ag.SendTuple(demoHubRegion, demoStreamReport, []byte(rst.line(ag))); err != nil {
		return err
	}
	return tickUntil(ag, timeout, "shutdown", rst.finished)
}
