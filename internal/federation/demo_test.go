package federation

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
)

// TestDemoParitySimVsSocket is the federation's transport-parity pin: the
// demo report out of the single-process simulation must be byte-identical
// to the report out of a lead plus two region agents running the real
// socket protocol. CI repeats the same diff across OS processes.
func TestDemoParitySimVsSocket(t *testing.T) {
	const regions = 2
	const seed = int64(5)

	var simOut bytes.Buffer
	if err := RunDemoSim(regions, seed, &simOut); err != nil {
		t.Fatalf("sim demo: %v", err)
	}
	if !strings.Contains(simOut.String(), "federation demo: 2 regions") {
		t.Fatalf("sim report missing header:\n%s", simOut.String())
	}
	if strings.Contains(simOut.String(), "dups=0") {
		t.Fatalf("sim report shows no dedup — the injected retry was not exercised:\n%s", simOut.String())
	}

	lead, err := transport.NewSocket(DemoLeadID, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer lead.Close()
	join := lead.Info().Addr

	var wg sync.WaitGroup
	regionErrs := make([]error, regions)
	for i := 1; i <= regions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := simnet.NodeID(fmt.Sprintf("r%02d", i))
			regionErrs[i-1] = RunDemoRegion(id, "127.0.0.1:0", join, 30*time.Second)
		}(i)
	}
	var sockOut bytes.Buffer
	leadErr := RunDemoLeadOn(lead, regions, seed, 30*time.Second, &sockOut)
	wg.Wait()
	if leadErr != nil {
		t.Fatalf("socket lead: %v", leadErr)
	}
	for i, err := range regionErrs {
		if err != nil {
			t.Fatalf("socket region r%02d: %v", i+1, err)
		}
	}

	if simOut.String() != sockOut.String() {
		t.Fatalf("sim and socket reports differ:\n--- sim ---\n%s--- socket ---\n%s",
			simOut.String(), sockOut.String())
	}
}

// TestDemoSimDeterminism: same seed, same report.
func TestDemoSimDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := RunDemoSim(3, 9, &a); err != nil {
		t.Fatal(err)
	}
	if err := RunDemoSim(3, 9, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("demo not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}
