package federation

import (
	"fmt"
	"testing"

	"mobistreams/internal/gossip"
	"mobistreams/internal/obs"
	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/wire"
)

// fleet is a federation of agents over a deterministic fabric: agent 0 is
// the lead.
type fleet struct {
	mesh   *transport.Mesh
	mems   []*transport.Mem
	agents []*Agent
	ids    []simnet.NodeID
}

func buildFleet(t *testing.T, n int, seed int64, journal *obs.Journal) *fleet {
	t.Helper()
	f := &fleet{mesh: transport.NewMesh(seed)}
	for i := 0; i < n; i++ {
		id := simnet.NodeID(fmt.Sprintf("agent%02d", i))
		f.ids = append(f.ids, id)
		f.mems = append(f.mems, f.mesh.Attach(id))
	}
	var at int64
	for i, id := range f.ids {
		a := NewAgent(id, f.mems[i], Config{
			Region:  fmt.Sprintf("r%02d", i),
			Lead:    i == 0,
			Gossip:  gossip.Config{Seed: seed},
			Journal: journal,
			Now:     func() int64 { at++; return at },
		})
		a.SetPeers(f.ids)
		mem := f.mems[i]
		mem.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
			if !a.Handle(from, class, frame) {
				t.Errorf("agent dropped foreign frame from %s", from)
			}
		})
		f.agents = append(f.agents, a)
	}
	return f
}

func (f *fleet) settle(rounds int) {
	f.mesh.Drain()
	for r := 0; r < rounds; r++ {
		for _, a := range f.agents {
			a.Tick()
		}
		f.mesh.Drain()
	}
}

func TestMembershipConverges(t *testing.T) {
	j := obs.NewJournal(0)
	f := buildFleet(t, 8, 9, j)
	for _, a := range f.agents {
		a.Join()
	}
	f.settle(6)
	for i, a := range f.agents {
		if got := len(a.Members()); got != 8 {
			t.Fatalf("agent %d sees %d members, want 8: %v", i, got, a.Members())
		}
		if lead, ok := a.LeadOf("r03"); !ok || lead != "agent03" {
			t.Fatalf("agent %d resolves r03 lead to %q", i, lead)
		}
	}
	members := 0
	for _, ev := range j.Events() {
		if ev.Kind == "fed.member" {
			members++
		}
	}
	if members == 0 {
		t.Fatal("no fed.member journal events")
	}
}

func TestRollupAggregationAndCaps(t *testing.T) {
	f := buildFleet(t, 5, 21, nil)
	for _, a := range f.agents {
		a.Join()
	}
	f.settle(4)
	for i, a := range f.agents {
		a.PublishRollup(wire.Rollup{
			Phones: 10 + i, Idle: i, Backlog: 2 * i, BatteryRisk: i % 2,
			OutTuples: uint64(100 * i),
		})
	}
	f.settle(6)

	agg := f.agents[0].Aggregate()
	if agg.Phones != 10+11+12+13+14 {
		t.Fatalf("aggregate phones = %d", agg.Phones)
	}
	if agg.Backlog != 2*(1+2+3+4) || agg.BatteryRisk != 2 {
		t.Fatalf("aggregate backlog/risk = %d/%d", agg.Backlog, agg.BatteryRisk)
	}
	// Every region — not just the lead — received the fleet caps.
	for i, a := range f.agents {
		caps, ok := a.Caps()
		if !ok {
			t.Fatalf("agent %d never received caps", i)
		}
		if caps.Region != FleetScope || caps.Phones != agg.Phones {
			t.Fatalf("agent %d caps = %+v", i, caps)
		}
	}
	// A stale epoch must not regress a member's rollup.
	before, _ := f.agents[0].MemberRollup("r02")
	f.agents[2].PublishRollup(wire.Rollup{Epoch: 1, Phones: 1})
	f.settle(4)
	after, _ := f.agents[0].MemberRollup("r02")
	if after.Epoch < before.Epoch {
		t.Fatalf("stale rollup regressed r02: %+v -> %+v", before, after)
	}
}

// TestCrossRegionExactlyOnce: envelopes dedup on (from-region, stream,
// seq) — a resent envelope is suppressed, a fresh one is delivered.
func TestCrossRegionExactlyOnce(t *testing.T) {
	j := obs.NewJournal(0)
	f := buildFleet(t, 3, 33, j)
	for _, a := range f.agents {
		a.Join()
	}
	f.settle(4)

	var got []string
	f.agents[1].RouteFunc("readings", func(env wire.XRegionEnv) {
		got = append(got, fmt.Sprintf("%s/%d:%s", env.FromRegion, env.Seq, env.Payload))
	})
	seq1, err := f.agents[2].SendTuple("r01", "readings", []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.agents[2].SendTuple("r01", "readings", []byte("b")); err != nil {
		t.Fatal(err)
	}
	// Retry the first envelope twice, as a redial path would.
	for i := 0; i < 2; i++ {
		if err := f.agents[2].Resend("r01", "readings", seq1, []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	f.mesh.Drain()

	want := []string{"r02/1:a", "r02/2:b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	st := f.agents[1].Stats()
	if st.TuplesDelivered != 2 || st.DupsDropped != 2 {
		t.Fatalf("delivered/dups = %d/%d, want 2/2", st.TuplesDelivered, st.DupsDropped)
	}
	var dupEvents int
	for _, ev := range j.Events() {
		if ev.Kind == "fed.xregion.dup" {
			dupEvents++
		}
	}
	if dupEvents != 2 {
		t.Fatalf("%d fed.xregion.dup events, want 2", dupEvents)
	}
	// Sending to an unknown region fails loudly rather than blackholing.
	if _, err := f.agents[2].SendTuple("nowhere", "readings", []byte("x")); err == nil {
		t.Fatal("send to unknown region succeeded")
	}
}

// TestLeadEgressConstantAcrossFleetSize pins the tentpole property at the
// federation level: the lead's control egress for a caps broadcast stays
// flat as the fleet quadruples.
func TestLeadEgressConstantAcrossFleetSize(t *testing.T) {
	leadEgress := func(n int) int64 {
		f := buildFleet(t, n, 55, nil)
		for _, a := range f.agents {
			a.Join()
		}
		f.settle(8)
		base := f.mems[0].SentBytes(simnet.ClassControl)
		f.agents[0].PublishCaps(wire.Rollup{Epoch: 999, Phones: 1000})
		f.mesh.Drain()
		return f.mems[0].SentBytes(simnet.ClassControl) - base
	}
	small, large := leadEgress(8), leadEgress(32)
	if large > small*3 {
		t.Fatalf("lead egress for one caps broadcast grew %d -> %d bytes", small, large)
	}
}
