package gossip

import (
	"fmt"
	"testing"

	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/wire"
)

// overlay is a full mesh of gossip nodes over a deterministic fabric.
type overlay struct {
	mesh  *transport.Mesh
	mems  []*transport.Mem
	nodes []*Node
	ids   []simnet.NodeID
}

func buildOverlay(n int, seed int64, cfg Config) *overlay {
	o := &overlay{mesh: transport.NewMesh(seed)}
	cfg.Seed = seed
	cfg.Class = simnet.ClassControl
	for i := 0; i < n; i++ {
		id := simnet.NodeID(fmt.Sprintf("n%02d", i))
		o.ids = append(o.ids, id)
		o.mems = append(o.mems, o.mesh.Attach(id))
	}
	for i, id := range o.ids {
		node := NewNode(id, o.mems[i], cfg)
		node.SetPeers(o.ids)
		mem := o.mems[i]
		mem.Receive(func(from simnet.NodeID, class simnet.Class, frame []byte) {
			node.Handle(from, class, frame)
		})
		o.nodes = append(o.nodes, node)
	}
	return o
}

// converge pumps anti-entropy rounds until every node holds seq msgs from
// origin, returning the number of rounds it took (0 = flood alone did it).
func (o *overlay) converge(t *testing.T, origin simnet.NodeID, seq uint64, maxRounds int) int {
	t.Helper()
	o.mesh.Drain()
	for round := 0; ; round++ {
		done := true
		for _, n := range o.nodes {
			if n.Delivered(origin) < seq {
				done = false
				break
			}
		}
		if done {
			return round
		}
		if round >= maxRounds {
			t.Fatalf("no convergence on %s/%d within %d rounds", origin, seq, maxRounds)
		}
		for _, n := range o.nodes {
			n.Tick()
		}
		o.mesh.Drain()
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	o := buildOverlay(20, 42, Config{})
	o.nodes[0].Broadcast("hello", []byte("city"))
	rounds := o.converge(t, o.ids[0], 1, 10)
	if rounds > 3 {
		t.Fatalf("lossless flood needed %d anti-entropy rounds", rounds)
	}
}

// TestOrderedExactlyOnce: every node dispatches each origin's messages in
// publication order, exactly once, even when eager pushes cross paths.
func TestOrderedExactlyOnce(t *testing.T) {
	const nodes, msgs = 12, 5
	o := buildOverlay(nodes, 7, Config{})
	got := make([][]string, nodes)
	for i, n := range o.nodes {
		i := i
		n.RegisterFunc("evt", func(origin simnet.NodeID, payload []byte) {
			got[i] = append(got[i], string(payload))
		})
	}
	for k := 0; k < msgs; k++ {
		o.nodes[3].Broadcast("evt", []byte(fmt.Sprintf("m%d", k)))
	}
	o.converge(t, o.ids[3], msgs, 20)
	for i, seq := range got {
		if len(seq) != msgs {
			t.Fatalf("node %d dispatched %d msgs, want %d: %v", i, len(seq), msgs, seq)
		}
		for k, s := range seq {
			if want := fmt.Sprintf("m%d", k); s != want {
				t.Fatalf("node %d msg %d = %q, want %q", i, k, s, want)
			}
		}
	}
	// Duplicate suppression must have done real work in a 12-node flood.
	var dups uint64
	for _, n := range o.nodes {
		dups += n.Stats().Duplicates
	}
	if dups == 0 {
		t.Fatal("flood produced no suppressed duplicates — fanout not overlapping?")
	}
}

// TestAntiEntropyRepairsLoss: with half the datagrams dropped, push-pull
// digests still converge the overlay, and dispatch stays exactly-once.
func TestAntiEntropyRepairsLoss(t *testing.T) {
	o := buildOverlay(16, 11, Config{})
	o.mesh.SetCastLoss(0.5)
	counts := make([]int, 16)
	for i, n := range o.nodes {
		i := i
		n.RegisterFunc("evt", func(simnet.NodeID, []byte) { counts[i]++ })
	}
	const msgs = 3
	for k := 0; k < msgs; k++ {
		o.nodes[0].Broadcast("evt", []byte{byte(k)})
	}
	rounds := o.converge(t, o.ids[0], msgs, 64)
	t.Logf("converged after %d repair rounds at 50%% cast loss", rounds)
	for i, c := range counts {
		if c != msgs {
			t.Fatalf("node %d dispatched %d, want %d (exactly-once broken)", i, c, msgs)
		}
	}
	var repairs uint64
	for _, n := range o.nodes {
		repairs += n.Stats().RepairsSent
	}
	if rounds > 0 && repairs == 0 {
		t.Fatal("converged over loss without any repair deltas?")
	}
}

// TestGossipDeterminism: same seed, same drive order — identical delivery
// state, byte counts and convergence behaviour.
func TestGossipDeterminism(t *testing.T) {
	run := func() (string, int64) {
		o := buildOverlay(10, 123, Config{})
		o.mesh.SetCastLoss(0.3)
		for k := 0; k < 4; k++ {
			o.nodes[k%3].Broadcast("evt", []byte{byte(k)})
		}
		o.mesh.Drain()
		for r := 0; r < 8; r++ {
			for _, n := range o.nodes {
				n.Tick()
			}
			o.mesh.Drain()
		}
		var state string
		var bytes int64
		for i, n := range o.nodes {
			for _, origin := range o.ids[:3] {
				state += fmt.Sprintf("%d:%s=%d;", i, origin, n.Delivered(origin))
			}
			bytes += o.mems[i].SentBytes(simnet.ClassControl)
		}
		return state, bytes
	}
	s1, b1 := run()
	s2, b2 := run()
	if s1 != s2 || b1 != b2 {
		t.Fatalf("replay diverged:\n%s (%d bytes)\n%s (%d bytes)", s1, b1, s2, b2)
	}
}

// TestOversizedPayloadFallsBackToTell: a payload over the datagram bound
// still reaches everyone — the best-effort path downgrades to the stream.
func TestOversizedPayloadFallsBackToTell(t *testing.T) {
	o := buildOverlay(4, 5, Config{})
	o.mesh.SetCastLimit(256)
	big := make([]byte, 1024)
	for i := range big {
		big[i] = byte(i)
	}
	var delivered int
	for _, n := range o.nodes {
		n.RegisterFunc("blob", func(origin simnet.NodeID, payload []byte) {
			if len(payload) != len(big) {
				t.Errorf("payload truncated to %d", len(payload))
			}
			delivered++
		})
	}
	o.nodes[0].Broadcast("blob", big)
	o.converge(t, o.ids[0], 1, 8)
	if delivered != 4 {
		t.Fatalf("delivered on %d of 4 nodes", delivered)
	}
	var fallbacks uint64
	for _, n := range o.nodes {
		fallbacks += n.Stats().CastFallbacks
	}
	if fallbacks == 0 {
		t.Fatal("oversized pushes never fell back to Tell")
	}
}

// TestHandlePassesThroughForeignFrames: non-gossip frames and classes are
// left to the owner.
func TestHandlePassesThroughForeignFrames(t *testing.T) {
	mesh := transport.NewMesh(1)
	mem := mesh.Attach("a")
	n := NewNode("a", mem, Config{Class: simnet.ClassControl})
	cmd := wire.AppendCommand(nil, &wire.Command{Op: 1, Version: 1, Target: "a", Slot: "s"})
	if n.Handle("b", simnet.ClassControl, cmd) {
		t.Fatal("gossip consumed a command frame")
	}
	digest := wire.AppendGossipDigest(nil, &wire.GossipDigest{From: "b"})
	if n.Handle("b", simnet.ClassData, digest) {
		t.Fatal("gossip consumed a frame on the wrong class")
	}
	if !n.Handle("b", simnet.ClassControl, digest) {
		t.Fatal("gossip refused its own digest")
	}
}

// TestSteadyStateFanoutConstant pins the tentpole property at the unit
// level: per-node egress for one broadcast does not scale with overlay
// size — the largest sender in a 48-node overlay spends no more than a
// small multiple of the largest sender in a 12-node overlay.
func TestSteadyStateFanoutConstant(t *testing.T) {
	maxEgress := func(nodes int) int64 {
		o := buildOverlay(nodes, 77, Config{})
		o.nodes[0].Broadcast("evt", make([]byte, 64))
		o.converge(t, o.ids[0], 1, 16)
		var worst int64
		for _, m := range o.mems {
			if b := m.SentBytes(simnet.ClassControl); b > worst {
				worst = b
			}
		}
		return worst
	}
	small, large := maxEgress(12), maxEgress(48)
	if large > small*3 {
		t.Fatalf("max per-node egress grew %d -> %d bytes (4x nodes, >3x bytes)", small, large)
	}
}

// TestBoundedDigestsConverge: with MaxDigest far below the origin count,
// rotating digest windows still repair every gap under heavy datagram
// loss — convergence just spreads over more ticks — and every encoded
// digest honours the bound, which is what keeps per-tick anti-entropy
// traffic constant as the overlay grows.
func TestBoundedDigestsConverge(t *testing.T) {
	const nodes, bound = 18, 3
	o := buildOverlay(nodes, 77, Config{MaxDigest: bound})
	o.mesh.SetCastLoss(0.6)
	// One message per node: many origins, so digests must rotate.
	for _, n := range o.nodes {
		n.Broadcast("evt", []byte("x"))
	}
	for _, origin := range o.ids {
		o.converge(t, origin, 1, 400)
	}
	// Every digest a node would emit now stays within the bound, and the
	// rotating cursor covers the full origin set across consecutive calls.
	n := o.nodes[0]
	seen := make(map[simnet.NodeID]bool)
	for i := 0; i < (nodes+bound-1)/bound+1; i++ {
		n.mu.Lock()
		frame := n.encodeDigestLocked(false)
		n.mu.Unlock()
		d, err := wire.DecodeGossipDigest(frame)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Entries) > bound {
			t.Fatalf("digest carries %d entries, bound is %d", len(d.Entries), bound)
		}
		for _, e := range d.Entries {
			seen[e.Origin] = true
		}
	}
	if len(seen) != nodes {
		t.Fatalf("rotating windows covered %d of %d origins", len(seen), nodes)
	}
}

// TestUnboundedDigestUnchanged: the zero value keeps the original
// every-origin digest — no window bounds on the wire.
func TestUnboundedDigestUnchanged(t *testing.T) {
	o := buildOverlay(6, 5, Config{})
	for _, n := range o.nodes {
		n.Broadcast("evt", []byte("x"))
	}
	o.mesh.Drain()
	n := o.nodes[0]
	n.mu.Lock()
	frame := n.encodeDigestLocked(false)
	n.mu.Unlock()
	d, err := wire.DecodeGossipDigest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lo != "" || d.Hi != "" {
		t.Fatalf("unbounded digest carries window [%q,%q]", d.Lo, d.Hi)
	}
	if len(d.Entries) != 6 {
		t.Fatalf("unbounded digest lists %d origins, want 6", len(d.Entries))
	}
}
