// Package gossip is the epidemic broadcast layer under the federated
// control plane. A published message reaches every node of the overlay at
// constant per-node cost: each node eagerly pushes to a fixed, seeded
// sample of peers while the message is young (few hops), suppresses
// duplicates, and stops pushing once the message has aged past the lazy
// threshold — from there, periodic push-pull anti-entropy digests repair
// whatever the probabilistic flood and the lossy datagram path missed.
// Digests themselves can be bounded (Config.MaxDigest) into rotating
// windows over the origin-ID space, so control fan-out per node is
// O(fanout + bounded digest), independent of overlay size — which is what
// lets one region's lead address a city of regions without its egress
// growing linearly.
//
// The layer is transport-agnostic: frames travel over any
// transport.Transport, preferring the best-effort datagram path when the
// transport is also a transport.Caster and falling back to the reliable
// stream for oversized or rejected frames. All randomness flows from the
// node's seed, so a single-threaded driver (transport.Mesh) replays
// identically: convergence rounds and per-node byte counts are exact
// functions of the seed.
package gossip

import (
	"math/rand"
	"sort"
	"sync"

	"mobistreams/internal/simnet"
	"mobistreams/internal/transport"
	"mobistreams/internal/wire"
)

// Handler consumes one delivered gossip message. Messages from one origin
// arrive in publication order, exactly once. The payload is owned by the
// gossip layer's store; handlers must copy it if they keep it.
type Handler func(origin simnet.NodeID, payload []byte)

// Config tunes one gossip node.
type Config struct {
	// Fanout is the number of peers each eager push samples. Zero means 3.
	Fanout int
	// LazyAfter is the hop count at which a relay stops pushing payloads
	// and leaves the tail to anti-entropy. Zero means 4.
	LazyAfter uint8
	// MaxBatch caps messages per repair delta frame. Zero means 128.
	MaxBatch int
	// MaxDigest caps origins per anti-entropy digest. Zero means
	// unbounded: every known origin in every digest. A bound turns each
	// digest into a rotating window over the origin-ID space (see
	// wire.GossipDigest), so per-tick digest traffic stays constant as
	// the overlay grows — the price is that a given origin is only
	// repaired every ceil(origins/MaxDigest) ticks.
	MaxDigest int
	// Class is the traffic class gossip frames ride. Zero value is
	// ClassData; the federation uses ClassControl.
	Class simnet.Class
	// Seed drives peer sampling. Nodes with distinct IDs derive distinct
	// streams from the same seed.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.LazyAfter == 0 {
		c.LazyAfter = 4
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	return c
}

// Stats counts one node's gossip activity.
type Stats struct {
	// Published counts messages this node originated.
	Published uint64
	// Delivered counts messages handed to handlers (own included).
	Delivered uint64
	// Duplicates counts received messages already held — the suppression
	// that keeps steady-state fan-out constant.
	Duplicates uint64
	// EagerPushes counts delta frames sent by the flood path.
	EagerPushes uint64
	// DigestsSent counts anti-entropy digests initiated or replied.
	DigestsSent uint64
	// RepairsSent counts delta frames sent to fill a peer's gaps.
	RepairsSent uint64
	// CastFallbacks counts frames the datagram path refused (oversized or
	// failed) that were re-sent on the reliable stream.
	CastFallbacks uint64
}

// originState tracks one origin's messages: log[i] holds seq i+1, so
// log is exactly the contiguously delivered prefix; future buffers
// out-of-order arrivals until the gap closes.
type originState struct {
	log    []wire.GossipMsg
	future map[uint64]wire.GossipMsg
}

func (o *originState) delivered() uint64 { return uint64(len(o.log)) }

// Node is one gossip participant.
type Node struct {
	id  simnet.NodeID
	tr  transport.Transport
	ca  transport.Caster // nil when the transport has no datagram path
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	peers     []simnet.NodeID // sorted; never contains id
	origins   map[simnet.NodeID]*originState
	methods   map[string]Handler
	ownSeq    uint64
	stats     Stats
	sampleBuf []int // reused index pool for peer sampling
	digestAt  int   // rotating window cursor for bounded digests
}

// NewNode creates a gossip node over tr. The node does not install itself
// as the transport's receive handler — the owner composes Handle into its
// own handler, since control connections carry non-gossip frames too.
func NewNode(id simnet.NodeID, tr transport.Transport, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		id:      id,
		tr:      tr,
		cfg:     cfg,
		origins: make(map[simnet.NodeID]*originState),
		methods: make(map[string]Handler),
	}
	n.ca, _ = tr.(transport.Caster)
	// Derive a per-node stream from the shared seed so nodes sharing a
	// seed still sample different peers.
	h := int64(0)
	for _, b := range []byte(id) {
		h = h*131 + int64(b)
	}
	n.rng = rand.New(rand.NewSource(cfg.Seed ^ h))
	return n
}

// RegisterFunc binds a method name to a handler. Messages published under
// an unregistered method are stored and forwarded but not dispatched
// locally — registration is per-role, membership in the overlay is not.
func (n *Node) RegisterFunc(method string, h Handler) {
	n.mu.Lock()
	n.methods[method] = h
	n.mu.Unlock()
}

// SetPeers replaces the peer set (self is filtered out). The list is kept
// sorted so sampling is a pure function of the RNG state.
func (n *Node) SetPeers(peers []simnet.NodeID) {
	n.mu.Lock()
	n.peers = n.peers[:0]
	for _, p := range peers {
		if p != n.id {
			n.peers = append(n.peers, p)
		}
	}
	sort.Slice(n.peers, func(i, j int) bool { return n.peers[i] < n.peers[j] })
	n.mu.Unlock()
}

// Peers reports the current peer set.
func (n *Node) Peers() []simnet.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]simnet.NodeID(nil), n.peers...)
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Delivered reports the contiguous high-water mark held for one origin.
func (n *Node) Delivered(origin simnet.NodeID) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if o := n.origins[origin]; o != nil {
		return o.delivered()
	}
	return 0
}

// Broadcast publishes a payload under a method name into the overlay. The
// message is delivered locally first (a node always hears itself), then
// eagerly pushed to a seeded sample of peers.
func (n *Node) Broadcast(method string, payload []byte) {
	n.mu.Lock()
	n.ownSeq++
	msg := wire.GossipMsg{
		Origin: n.id, Seq: n.ownSeq, Hops: 0,
		Method: method, Payload: append([]byte(nil), payload...),
	}
	n.stats.Published++
	acts := n.ingestLocked(msg)
	n.mu.Unlock()
	n.run(acts)
}

// Tick runs one anti-entropy round: the node sends its digest to one
// sampled peer. The peer repairs gaps in both directions (see
// handleDigest). Call it on the owner's control cadence.
func (n *Node) Tick() {
	n.mu.Lock()
	targets := n.sampleLocked(1)
	if len(targets) == 0 {
		n.mu.Unlock()
		return
	}
	frame := n.encodeDigestLocked(false)
	n.stats.DigestsSent++
	acts := []action{{to: targets[0], frame: frame, bestEffort: true}}
	n.mu.Unlock()
	n.run(acts)
}

// Handle offers a received frame to the gossip layer. It returns true
// when the frame was a gossip frame (consumed), false when the owner
// should dispatch it itself.
func (n *Node) Handle(from simnet.NodeID, class simnet.Class, frame []byte) bool {
	if class != n.cfg.Class {
		return false
	}
	switch wire.FrameKind(frame) {
	case wire.KindGossipDelta:
		d, err := wire.DecodeGossipDelta(frame)
		if err != nil {
			return true // malformed gossip frame: consumed, dropped
		}
		n.handleDelta(d)
		return true
	case wire.KindGossipDigest:
		d, err := wire.DecodeGossipDigest(frame)
		if err != nil {
			return true
		}
		n.handleDigest(d)
		return true
	default:
		return false
	}
}

// action is one deferred side effect computed under the lock and executed
// outside it: transport sends can block (sockets) or re-enter (a handler
// broadcasting in turn), so the node's mutex must not be held across them.
type action struct {
	to         simnet.NodeID
	frame      []byte
	bestEffort bool
	deliver    *wire.GossipMsg // local dispatch instead of a send
	handler    Handler
}

func (n *Node) run(acts []action) {
	for _, a := range acts {
		if a.deliver != nil {
			if a.handler != nil {
				a.handler(a.deliver.Origin, a.deliver.Payload)
			}
			continue
		}
		if a.bestEffort {
			n.sendBestEffort(a.to, a.frame)
		} else {
			n.tr.Tell(a.to, n.cfg.Class, a.frame) //nolint:errcheck // repaired by anti-entropy
		}
	}
}

// sendBestEffort prefers the datagram path and falls back to the reliable
// stream when the cast is refused (no caster, oversized on Mesh, dialing
// trouble). Socket's own Cast already downgrades oversized frames; the
// fallback here covers transports that reject instead.
func (n *Node) sendBestEffort(to simnet.NodeID, frame []byte) {
	if n.ca != nil {
		if err := n.ca.Cast(to, n.cfg.Class, frame); err == nil {
			return
		}
		n.mu.Lock()
		n.stats.CastFallbacks++
		n.mu.Unlock()
	}
	n.tr.Tell(to, n.cfg.Class, frame) //nolint:errcheck // repaired by anti-entropy
}

// ingestLocked stores a message if it is new and returns the deferred
// deliveries and forwards it triggers. Payloads of stored messages are
// copied: received frames are transport-owned.
func (n *Node) ingestLocked(m wire.GossipMsg) []action {
	o := n.origins[m.Origin]
	if o == nil {
		o = &originState{future: make(map[uint64]wire.GossipMsg)}
		n.origins[m.Origin] = o
	}
	if m.Seq <= o.delivered() {
		n.stats.Duplicates++
		return nil
	}
	if _, dup := o.future[m.Seq]; dup {
		n.stats.Duplicates++
		return nil
	}
	stored := m
	if m.Origin != n.id { // Broadcast already copied its payload
		stored.Payload = append([]byte(nil), m.Payload...)
	}
	o.future[m.Seq] = stored

	var acts []action
	// Advance the contiguous prefix and deliver in order.
	for {
		next, ok := o.future[o.delivered()+1]
		if !ok {
			break
		}
		delete(o.future, next.Seq)
		o.log = append(o.log, next)
		n.stats.Delivered++
		msg := &o.log[len(o.log)-1]
		acts = append(acts, action{deliver: msg, handler: n.methods[next.Method]})
		// Eager push while the message is young; older copies are left to
		// anti-entropy — this is the suppression that caps steady fan-out.
		if next.Hops < n.cfg.LazyAfter {
			fwd := *msg
			fwd.Hops++
			frame := wire.AppendGossipDelta(nil, &wire.GossipDelta{
				From: n.id, Msgs: []wire.GossipMsg{fwd},
			})
			for _, p := range n.sampleLocked(n.cfg.Fanout) {
				n.stats.EagerPushes++
				acts = append(acts, action{to: p, frame: frame, bestEffort: true})
			}
		}
	}
	return acts
}

func (n *Node) handleDelta(d wire.GossipDelta) {
	n.mu.Lock()
	var acts []action
	for i := range d.Msgs {
		acts = append(acts, n.ingestLocked(d.Msgs[i])...)
	}
	n.mu.Unlock()
	n.run(acts)
}

// handleDigest answers a peer's anti-entropy summary: repair deltas for
// everything the peer lacks, and — on an initial digest only — our own
// digest back when the peer holds messages we lack, completing the pull
// half without ping-ponging forever.
func (n *Node) handleDigest(d wire.GossipDigest) {
	n.mu.Lock()
	theirs := make(map[simnet.NodeID]uint64, len(d.Entries))
	for _, e := range d.Entries {
		theirs[e.Origin] = e.Seq
	}
	var acts []action

	// Push: messages we hold past their high-water marks.
	var repair []wire.GossipMsg
	flush := func() {
		if len(repair) == 0 {
			return
		}
		frame := wire.AppendGossipDelta(nil, &wire.GossipDelta{From: n.id, Msgs: repair})
		n.stats.RepairsSent++
		// Repairs answer a detected gap: send them reliably.
		acts = append(acts, action{to: d.From, frame: frame})
		repair = nil
	}
	for _, origin := range n.sortedOriginsLocked() {
		if !d.Covers(origin) {
			// Outside the digest's window the peer said nothing about
			// this origin — repairing it would resend messages the peer
			// likely holds. A later window covers it.
			continue
		}
		o := n.origins[origin]
		from := theirs[origin]
		for seq := from + 1; seq <= o.delivered(); seq++ {
			m := o.log[seq-1]
			m.Hops = n.cfg.LazyAfter // repaired copies are not re-flooded
			repair = append(repair, m)
			if len(repair) >= n.cfg.MaxBatch {
				flush()
			}
		}
	}
	flush()

	// Pull: if they hold messages we lack, send our digest back once.
	if !d.Reply {
		behind := false
		for origin, seq := range theirs {
			o := n.origins[origin]
			if o == nil || o.delivered() < seq {
				behind = true
				break
			}
		}
		if behind {
			frame := n.encodeDigestLocked(true)
			n.stats.DigestsSent++
			acts = append(acts, action{to: d.From, frame: frame, bestEffort: true})
		}
	}
	n.mu.Unlock()
	n.run(acts)
}

func (n *Node) sortedOriginsLocked() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(n.origins))
	for origin := range n.origins {
		out = append(out, origin)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// encodeDigestLocked builds this node's anti-entropy digest. With
// MaxDigest set and more origins than the bound, the digest covers a
// rotating half-open window of the origin-ID space: the first window
// opens at -inf, each window closes exactly where the next one opens,
// and the last closes at +inf — so every origin a peer might hold,
// including ones this node has never heard of, falls into some window
// across consecutive ticks.
func (n *Node) encodeDigestLocked(reply bool) []byte {
	d := wire.GossipDigest{From: n.id, Reply: reply}
	origins := n.sortedOriginsLocked()
	lo, hi := 0, len(origins)
	if k := n.cfg.MaxDigest; k > 0 && len(origins) > k {
		if n.digestAt >= len(origins) {
			n.digestAt = 0
		}
		lo = n.digestAt
		hi = lo + k
		if hi > len(origins) {
			hi = len(origins)
		}
		if lo > 0 {
			d.Lo = origins[lo]
		}
		if hi < len(origins) {
			d.Hi = origins[hi] // exclusive: the next window's first origin
		}
		n.digestAt = hi % len(origins)
	}
	for _, origin := range origins[lo:hi] {
		d.Entries = append(d.Entries, wire.DigestEntry{
			Origin: origin, Seq: n.origins[origin].delivered(),
		})
	}
	return wire.AppendGossipDigest(nil, &d)
}

// sampleLocked picks up to k distinct peers with the node's seeded RNG.
func (n *Node) sampleLocked(k int) []simnet.NodeID {
	if len(n.peers) == 0 || k <= 0 {
		return nil
	}
	if k >= len(n.peers) {
		return append([]simnet.NodeID(nil), n.peers...)
	}
	if cap(n.sampleBuf) < len(n.peers) {
		n.sampleBuf = make([]int, len(n.peers))
	}
	idx := n.sampleBuf[:len(n.peers)]
	for i := range idx {
		idx[i] = i
	}
	// Partial Fisher-Yates: only the first k positions are needed.
	out := make([]simnet.NodeID, k)
	for i := 0; i < k; i++ {
		j := i + n.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = n.peers[idx[i]]
	}
	return out
}
