package tuple

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCloneIsIndependent(t *testing.T) {
	orig := &Tuple{Seq: 7, Source: "s1", Kind: "image", Size: 1024, Created: time.Second}
	c := orig.Clone()
	if *c != *orig {
		t.Fatalf("clone differs: %+v vs %+v", c, orig)
	}
	c.Seq = 8
	c.Replay = true
	if orig.Seq != 7 || orig.Replay {
		t.Fatal("mutating clone affected original")
	}
}

func TestItemWireSize(t *testing.T) {
	d := DataItem(&Tuple{Size: 4096})
	if d.WireSize() != 4096 {
		t.Fatalf("data wire size = %d, want 4096", d.WireSize())
	}
	m := MarkerItem(Marker{Kind: MarkerToken, Version: 3})
	if m.WireSize() != TokenSize {
		t.Fatalf("marker wire size = %d, want %d", m.WireSize(), TokenSize)
	}
	if m.Marker == nil || m.Marker.Version != 3 {
		t.Fatal("marker payload lost")
	}
}

func TestMarkerStrings(t *testing.T) {
	if got := (Marker{Kind: MarkerToken, Version: 5}).String(); got != "token(v5)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Marker{Kind: MarkerReplayEnd, Version: 2}).String(); got != "replay-end(v2)" {
		t.Fatalf("String = %q", got)
	}
	if got := MarkerKind(99).String(); got != "marker(99)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTupleString(t *testing.T) {
	tp := &Tuple{Seq: 3, Source: "cam", Kind: "image", Size: 2}
	if got := tp.String(); got != "tuple{cam#3 image 2B}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Clone always yields an equal value whose mutation never leaks
// back into the original.
func TestCloneProperty(t *testing.T) {
	f := func(seq uint64, src string, size int, replay bool) bool {
		orig := &Tuple{Seq: seq, Source: src, Size: size, Replay: replay}
		c := orig.Clone()
		if *c != *orig {
			return false
		}
		c.Seq++
		c.Replay = !c.Replay
		return orig.Seq == seq && orig.Replay == replay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a marker's wire size is constant and independent of version.
func TestMarkerWireSizeProperty(t *testing.T) {
	f := func(version uint64, kind bool) bool {
		k := MarkerToken
		if kind {
			k = MarkerReplayEnd
		}
		return MarkerItem(Marker{Kind: k, Version: version}).WireSize() == TokenSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
