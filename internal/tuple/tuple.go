// Package tuple defines the unit of data exchanged between operators and
// the in-band control markers (checkpoint tokens, replay-end markers) that
// travel inside data streams.
//
// A tuple's Size is its on-the-wire size in bytes: the network simulator
// charges airtime by Size, so producers must set it to the realistic
// serialized size of the payload (e.g. the byte length of a camera image).
package tuple

import (
	"fmt"
	"time"
)

// Tuple is one unit of data in a stream.
type Tuple struct {
	// Seq is the per-source sequence number, assigned by the source
	// operator that admitted the tuple into the region.
	Seq uint64
	// Source is the ID of the source operator that admitted the tuple.
	Source string
	// Kind names the payload type (e.g. "image", "businfo", "count").
	Kind string
	// Created is the simulated time at which the tuple entered the
	// system; end-to-end latency is measured against it.
	Created time.Duration
	// Size is the serialized size in bytes charged by the network.
	Size int
	// Replay marks tuples that are being re-processed during catch-up
	// after a failure; sinks discard results derived from them.
	Replay bool
	// Value is the typed payload.
	Value interface{}
}

// Clone returns a shallow copy of the tuple. Payloads are treated as
// immutable once emitted, so a shallow copy is sufficient for replication
// and preservation.
func (t *Tuple) Clone() *Tuple {
	c := *t
	return &c
}

func (t *Tuple) String() string {
	return fmt.Sprintf("tuple{%s#%d %s %dB}", t.Source, t.Seq, t.Kind, t.Size)
}

// MarkerKind distinguishes the in-band control markers.
type MarkerKind int

const (
	// MarkerToken is a checkpoint token (§III-B). A node checkpoints
	// after receiving the token of a given version from every upstream
	// neighbour.
	MarkerToken MarkerKind = iota
	// MarkerReplayEnd terminates catch-up: sources emit it after
	// replaying preserved input, and sinks resume publishing once it has
	// arrived from all upstream neighbours.
	MarkerReplayEnd
)

func (k MarkerKind) String() string {
	switch k {
	case MarkerToken:
		return "token"
	case MarkerReplayEnd:
		return "replay-end"
	default:
		return fmt.Sprintf("marker(%d)", int(k))
	}
}

// TokenSize is the on-the-wire size of a marker in bytes. The paper reports
// token overhead below 1% of tuple size; 64 bytes is negligible next to
// 100+ KB image tuples.
const TokenSize = 64

// Marker is an in-band control marker. Markers flow through the same FIFO
// edges as tuples, so a marker received on an edge partitions that edge's
// stream exactly: every tuple before the marker belongs to the pre-marker
// cut and every tuple after it to the post-marker cut.
type Marker struct {
	Kind MarkerKind
	// Version is the checkpoint version for MarkerToken, or the recovery
	// epoch for MarkerReplayEnd.
	Version uint64
}

func (m Marker) String() string {
	return fmt.Sprintf("%s(v%d)", m.Kind, m.Version)
}

// Item is what actually travels on a stream edge: exactly one of Tuple or
// Marker is non-nil.
type Item struct {
	Tuple  *Tuple
	Marker *Marker
}

// WireSize reports the bytes the network charges for this item.
func (it Item) WireSize() int {
	if it.Tuple != nil {
		return it.Tuple.Size
	}
	return TokenSize
}

// DataItem wraps a tuple as a stream item.
func DataItem(t *Tuple) Item { return Item{Tuple: t} }

// MarkerItem wraps a marker as a stream item.
func MarkerItem(m Marker) Item { return Item{Marker: &m} }
