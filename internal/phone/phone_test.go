package phone

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBatteryDrainsToDeath(t *testing.T) {
	p := New("a", Config{BatteryJoules: 10, CPUWatts: 1})
	if p.Dead() {
		t.Fatal("new phone dead")
	}
	if !p.DrainCPU(5 * time.Second) {
		t.Fatal("died too early")
	}
	if got := p.BatteryFraction(); got < 0.45 || got > 0.55 {
		t.Fatalf("battery = %v, want ~0.5", got)
	}
	if p.DrainCPU(6 * time.Second) {
		t.Fatal("should be dead after 11J of 10J")
	}
	if !p.Dead() {
		t.Fatal("Dead() false after depletion")
	}
	if p.BatteryFraction() != 0 {
		t.Fatal("battery fraction should clamp to 0")
	}
}

func TestTxDrain(t *testing.T) {
	p := New("a", Config{BatteryJoules: 10, TxJoulesPerMB: 5})
	p.DrainTx(1 << 20) // ~1MB -> ~5J
	if f := p.BatteryFraction(); f > 0.55 || f < 0.40 {
		t.Fatalf("battery after 1MB tx = %v", f)
	}
}

func TestChronicThreshold(t *testing.T) {
	p := New("a", Config{BatteryJoules: 100, CPUWatts: 1})
	if p.BatteryChronic() {
		t.Fatal("full battery chronic")
	}
	p.DrainCPU(96 * time.Second)
	if !p.BatteryChronic() {
		t.Fatalf("4%% battery not chronic (frac=%v)", p.BatteryFraction())
	}
}

func TestKillAndRevive(t *testing.T) {
	p := New("a", Config{})
	p.Kill()
	if !p.Dead() {
		t.Fatal("kill did not work")
	}
	p.Revive(0.8)
	if p.Dead() {
		t.Fatal("revive did not work")
	}
	if f := p.BatteryFraction(); f < 0.79 || f > 0.81 {
		t.Fatalf("revived battery = %v", f)
	}
}

func TestPositionAndRange(t *testing.T) {
	p := New("a", Config{})
	p.SetPosition(Position{X: 3, Y: 4})
	if !p.InRange(Position{}, 5.01) {
		t.Fatal("should be in 5m range")
	}
	if p.InRange(Position{}, 4.99) {
		t.Fatal("should be out of 5m range")
	}
}

func TestFlashWriteTime(t *testing.T) {
	p := New("a", Config{FlashWriteBps: 1e6})
	if got := p.FlashWriteTime(1e6); got != time.Second {
		t.Fatalf("write time = %v, want 1s", got)
	}
}

func TestCPUBusyAccumulates(t *testing.T) {
	p := New("a", Config{})
	p.DrainCPU(time.Second)
	p.DrainCPU(2 * time.Second)
	if p.CPUBusy() != 3*time.Second {
		t.Fatalf("busy = %v", p.CPUBusy())
	}
}

// Property: battery fraction is monotonically non-increasing under drains.
func TestBatteryMonotoneProperty(t *testing.T) {
	f := func(drains []uint16) bool {
		p := New("x", Config{BatteryJoules: 1000})
		prev := p.BatteryFraction()
		for _, d := range drains {
			p.DrainCPU(time.Duration(d) * time.Millisecond)
			p.DrainTx(int(d))
			cur := p.BatteryFraction()
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is symmetric and zero iff identical.
func TestDistanceProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Position{X: float64(ax), Y: float64(ay)}
		b := Position{X: float64(bx), Y: float64(by)}
		if a.DistanceSq(b) != b.DistanceSq(a) {
			return false
		}
		if a == b {
			return a.DistanceSq(b) == 0
		}
		return a.DistanceSq(b) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDrainRxChargesReceiveEnergy(t *testing.T) {
	p := New("x", Config{BatteryJoules: 100})
	// Default RxJoulesPerMB is 3: receiving 10 MB costs 30 J.
	if !p.DrainRx(10e6) {
		t.Fatal("phone died receiving 10 MB on a 100 J battery")
	}
	if got := p.EnergyJoules(); got != 70 {
		t.Fatalf("energy = %v, want 70", got)
	}
	// Receive is cheaper than transmit (3 vs 5 J/MB by default).
	q := New("y", Config{BatteryJoules: 100})
	q.DrainTx(10e6)
	if q.EnergyJoules() >= p.EnergyJoules() {
		t.Fatalf("tx (%v J left) should cost more than rx (%v J left)", q.EnergyJoules(), p.EnergyJoules())
	}
	// Draining through zero kills the phone.
	if p.DrainRx(30e6) {
		t.Fatal("phone survived draining past empty")
	}
	if !p.Dead() {
		t.Fatal("phone not dead after rx drain to zero")
	}
}

func TestVelocityRoundTrip(t *testing.T) {
	p := New("x", Config{})
	if vx, vy := p.Velocity(); vx != 0 || vy != 0 {
		t.Fatalf("fresh phone velocity = (%v, %v), want (0, 0)", vx, vy)
	}
	p.SetVelocity(3, -4)
	if vx, vy := p.Velocity(); vx != 3 || vy != -4 {
		t.Fatalf("velocity = (%v, %v), want (3, -4)", vx, vy)
	}
}
