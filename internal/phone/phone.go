// Package phone models the smartphone device: battery, GPS position, and
// flash storage speed. Battery depletion and mobility are the paper's two
// dominant causes of node failure and departure (§I, §III-E).
package phone

import (
	"sync"
	"time"

	"mobistreams/internal/clock"
	"mobistreams/internal/simnet"
)

// Position is a GPS fix in metres within a flat local frame.
type Position struct {
	X, Y float64
}

// DistanceSq returns the squared distance between two positions.
func (p Position) DistanceSq(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Config parameterises a phone. Zero values get sensible defaults for an
// iPhone-3GS-class device.
type Config struct {
	// BatteryJoules is the usable battery energy (default 20 kJ ~ a
	// well-worn 1200 mAh pack).
	BatteryJoules float64
	// CPUWatts is power drawn per second of busy CPU (default 0.9 W).
	CPUWatts float64
	// TxJoulesPerMB is radio energy per megabyte sent (default 5 J/MB).
	TxJoulesPerMB float64
	// RxJoulesPerMB is radio energy per megabyte received (default 3 J/MB):
	// listening is cheaper than transmitting but far from free, and a phone
	// that mostly consumes broadcasts drains real battery doing so.
	RxJoulesPerMB float64
	// FlashWriteBps is local storage write bandwidth (default 10 MB/s).
	FlashWriteBps float64
	// VirtualCPUTime anchors CPU reservations at the simulated time work
	// became runnable (see ExecFrom) instead of at the caller's
	// wall-derived clock reading. Service rates then hold exactly in
	// simulated time regardless of host scheduling — the right model for
	// utilisation-sensitive experiments (the elastic bench's saturation
	// physics). Off by default: virtual anchoring lets a stalled executor
	// catch up through its backlog in zero additional simulated time,
	// which compresses in-flight windows and changes the loss profile
	// that wall-paced failure scenarios (churn) are seeded against.
	VirtualCPUTime bool
}

func (c *Config) applyDefaults() {
	if c.BatteryJoules <= 0 {
		c.BatteryJoules = 20e3
	}
	if c.CPUWatts <= 0 {
		c.CPUWatts = 0.9
	}
	if c.TxJoulesPerMB <= 0 {
		c.TxJoulesPerMB = 5
	}
	if c.RxJoulesPerMB <= 0 {
		c.RxJoulesPerMB = 3
	}
	if c.FlashWriteBps <= 0 {
		c.FlashWriteBps = 10e6
	}
}

// Phone is one device. It is safe for concurrent use.
type Phone struct {
	ID  simnet.NodeID
	cfg Config

	mu           sync.Mutex
	energy       float64
	pos          Position
	velX, velY   float64 // metres per simulated second
	dead         bool
	cpuBusy      time.Duration // cumulative busy CPU time
	cpuBusyUntil time.Duration // CPU reservation horizon (shared core)
}

// New creates a phone at the origin with a full battery.
func New(id simnet.NodeID, cfg Config) *Phone {
	cfg.applyDefaults()
	return &Phone{ID: id, cfg: cfg, energy: cfg.BatteryJoules}
}

// Exec runs d of CPU work on the phone's single core: concurrent callers
// (a primary node and a rep-2 standby sharing the device) serialise through
// a busy-until reservation, so two 7-second jobs take 14 seconds of
// simulated time, not 7. It returns false when the battery dies.
func (p *Phone) Exec(clk clock.Clock, d time.Duration) bool {
	return p.ExecFrom(clk, clk.Now(), d)
}

// ExecFrom is Exec for work that became runnable at simulated time ready
// (a queued tuple's enqueue time). With Config.VirtualCPUTime set, the
// reservation anchors at the later of the core's busy horizon and ready
// rather than at the caller's wall-derived clock reading: a goroutine woken
// late by the OS scheduler charges only d per item instead of d plus its
// wake latency, which on a loaded host would otherwise inflate every
// service time and silently lower the simulated capacity; if the virtual
// horizon already passed, the work is charged without sleeping at all and
// the executor catches up at wall speed. Without the flag, ready is
// ignored and ExecFrom behaves exactly like Exec.
func (p *Phone) ExecFrom(clk clock.Clock, ready, d time.Duration) bool {
	if d <= 0 {
		return !p.Dead()
	}
	now := clk.Now()
	if !p.cfg.VirtualCPUTime || ready <= 0 || ready > now {
		ready = now
	}
	p.mu.Lock()
	start := p.cpuBusyUntil
	if start < ready {
		start = ready
	}
	p.cpuBusyUntil = start + d
	end := p.cpuBusyUntil
	p.mu.Unlock()
	if wait := end - now; wait > 0 {
		clk.Sleep(wait)
	}
	return p.DrainCPU(d)
}

// DrainCPU charges d of busy CPU against the battery and returns whether
// the phone is still alive.
func (p *Phone) DrainCPU(d time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cpuBusy += d
	p.energy -= d.Seconds() * p.cfg.CPUWatts
	if p.energy <= 0 {
		p.dead = true
	}
	return !p.dead
}

// DrainTx charges radio energy for sending n bytes.
func (p *Phone) DrainTx(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.energy -= float64(n) / 1e6 * p.cfg.TxJoulesPerMB
	if p.energy <= 0 {
		p.dead = true
	}
	return !p.dead
}

// DrainRx charges radio energy for receiving n bytes.
func (p *Phone) DrainRx(n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.energy -= float64(n) / 1e6 * p.cfg.RxJoulesPerMB
	if p.energy <= 0 {
		p.dead = true
	}
	return !p.dead
}

// EnergyJoules reports the remaining battery energy (telemetry; the
// scheduler extrapolates time-to-death from successive readings).
func (p *Phone) EnergyJoules() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.energy < 0 {
		return 0
	}
	return p.energy
}

// BatteryFraction reports remaining battery in [0,1].
func (p *Phone) BatteryFraction() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.energy / p.cfg.BatteryJoules
	if f < 0 {
		return 0
	}
	return f
}

// BatteryChronic reports whether battery is at the chronic level where the
// phone proactively reports itself to the controller (§III-D).
func (p *Phone) BatteryChronic() bool { return p.BatteryFraction() < 0.05 }

// CPUBusy reports cumulative busy CPU time.
func (p *Phone) CPUBusy() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cpuBusy
}

// Kill marks the phone failed (battery pulled, crash).
func (p *Phone) Kill() {
	p.mu.Lock()
	p.dead = true
	p.mu.Unlock()
}

// Revive resets a phone to alive with the given battery fraction, modelling
// a recharged phone re-entering service.
func (p *Phone) Revive(batteryFraction float64) {
	p.mu.Lock()
	p.dead = false
	p.energy = batteryFraction * p.cfg.BatteryJoules
	p.mu.Unlock()
}

// Dead reports whether the phone has failed.
func (p *Phone) Dead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// SetPosition updates the GPS fix.
func (p *Phone) SetPosition(pos Position) {
	p.mu.Lock()
	p.pos = pos
	p.mu.Unlock()
}

// Position returns the GPS fix.
func (p *Phone) Position() Position {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pos
}

// SetVelocity records the phone's ground velocity in metres per simulated
// second. The scheduler extrapolates the GPS trajectory toward the WiFi
// range boundary from position plus velocity (§III-E's departure feed,
// turned predictive).
func (p *Phone) SetVelocity(vx, vy float64) {
	p.mu.Lock()
	p.velX, p.velY = vx, vy
	p.mu.Unlock()
}

// Velocity returns the last recorded ground velocity (m/s).
func (p *Phone) Velocity() (vx, vy float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.velX, p.velY
}

// InRange reports whether the phone is within radius metres of centre —
// the region-membership test used at startup and by departure detection.
func (p *Phone) InRange(centre Position, radius float64) bool {
	return p.Position().DistanceSq(centre) <= radius*radius
}

// FlashWriteTime returns the simulated time to write n bytes to flash.
func (p *Phone) FlashWriteTime(n int) time.Duration {
	return time.Duration(float64(n) / p.cfg.FlashWriteBps * float64(time.Second))
}

// FlashReadTime returns the simulated time to read n bytes from flash
// (reads run about twice as fast as writes on this class of device).
func (p *Phone) FlashReadTime(n int) time.Duration {
	return time.Duration(float64(n) / (2 * p.cfg.FlashWriteBps) * float64(time.Second))
}
