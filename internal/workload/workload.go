// Package workload drives the applications with synthetic sensor feeds:
// camera frames at frame rate (with planted ground truth) and bus-info
// readings at bus-arrival rate. Generators push through a generic sink
// function so they work against regions, server deployments and tests
// alike.
package workload

import (
	"math/rand"
	"sync"
	"time"

	"mobistreams/internal/apps/bcp"
	"mobistreams/internal/apps/signalguru"
	"mobistreams/internal/clock"
	"mobistreams/internal/vision"
)

// Push admits one external tuple: the region.Ingest signature.
type Push func(srcOp string, value interface{}, size int, kind string)

// Generator runs feeds on their schedules until stopped.
type Generator struct {
	clk    clock.Clock
	stopCh chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewGenerator creates a stopped-when-told generator.
func NewGenerator(clk clock.Clock) *Generator {
	return &Generator{clk: clk, stopCh: make(chan struct{})}
}

// Stop halts all feeds and waits for them.
func (g *Generator) Stop() {
	g.once.Do(func() { close(g.stopCh) })
	g.wg.Wait()
}

// Every runs fn once per period of simulated time (with up to 10%
// deterministic jitter from seed) until the generator stops — the schedule
// custom feeds ride, e.g. driving a stream-built pipeline's source from an
// example or a test.
func (g *Generator) Every(period time.Duration, seed int64, fn func(i int)) {
	g.every(period, seed, fn)
}

// every runs fn once per period (with up to 10% deterministic jitter from
// seed) until the generator stops.
func (g *Generator) every(period time.Duration, seed int64, fn func(i int)) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; ; i++ {
			jitter := time.Duration(rng.Int63n(int64(period)/10 + 1))
			select {
			case <-g.clk.After(period + jitter):
				fn(i)
			case <-g.stopCh:
				return
			}
		}
	}()
}

// BCPCameraConfig parameterises the bus-stop camera feed.
type BCPCameraConfig struct {
	// Period is the frame interval (default 1.5 s: slightly above the
	// four counters' aggregate service rate so the region runs at
	// capacity).
	Period time.Duration
	// WireBytes is the tuple size on the network (default 180 KB).
	WireBytes int
	// MaxPeople bounds the planted crowd size.
	MaxPeople int
	// RealImages renders actual frames for RealCompute pipelines.
	RealImages bool
	Seed       int64
}

// StartBCPCamera feeds camera frames into source S1.
func (g *Generator) StartBCPCamera(push Push, cfg BCPCameraConfig) {
	if cfg.Period <= 0 {
		cfg.Period = 1500 * time.Millisecond
	}
	if cfg.WireBytes <= 0 {
		cfg.WireBytes = 180 << 10
	}
	if cfg.MaxPeople <= 0 {
		cfg.MaxPeople = 6
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	g.every(cfg.Period, cfg.Seed, func(i int) {
		people := rng.Intn(cfg.MaxPeople + 1)
		f := bcp.Frame{Planted: people}
		if cfg.RealImages {
			im, _ := vision.GenerateFaces(vision.Scene{W: 200, H: 150, Noise: 25, Seed: cfg.Seed + int64(i)}, people)
			f.Image = im
		}
		push("S1", f, cfg.WireBytes, "image")
	})
}

// BCPBusConfig parameterises the bus-info feed (source S0).
type BCPBusConfig struct {
	// Period is the bus arrival interval (default 60 s).
	Period time.Duration
	// CorruptEvery injects a corrupt reading every n tuples (0 = never).
	CorruptEvery int
	Seed         int64
}

// StartBCPBus feeds bus-info tuples into source S0.
func (g *Generator) StartBCPBus(push Push, cfg BCPBusConfig) {
	if cfg.Period <= 0 {
		cfg.Period = 60 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	g.every(cfg.Period, cfg.Seed, func(i int) {
		info := bcp.BusInfo{OnBoard: 10 + float64(rng.Intn(30))}
		if cfg.CorruptEvery > 0 && i%cfg.CorruptEvery == cfg.CorruptEvery-1 {
			info.Corrupt = true
		}
		push("S0", info, 512, "businfo")
	})
}

// SGCameraConfig parameterises the windshield camera feed.
type SGCameraConfig struct {
	// Period is the frame interval (default 1.1 s: the three filter
	// columns aggregate to ~0.9 frames/s).
	Period time.Duration
	// WireBytes is the tuple size (default 110 KB).
	WireBytes int
	// PhaseLen is how many frames each signal phase lasts (default 8).
	PhaseLen int
	// RealImages renders actual frames.
	RealImages bool
	Seed       int64
}

// StartSGCamera feeds intersection frames into source S1, cycling the
// planted light red -> green -> yellow on a fixed schedule so the
// grouping/prediction operators observe real transitions.
func (g *Generator) StartSGCamera(push Push, cfg SGCameraConfig) {
	if cfg.Period <= 0 {
		cfg.Period = 1100 * time.Millisecond
	}
	if cfg.WireBytes <= 0 {
		cfg.WireBytes = 110 << 10
	}
	if cfg.PhaseLen <= 0 {
		cfg.PhaseLen = 8
	}
	cycle := []vision.LightColor{vision.Red, vision.Green, vision.Yellow}
	g.every(cfg.Period, cfg.Seed, func(i int) {
		color := cycle[(i/cfg.PhaseLen)%len(cycle)]
		f := signalguru.Frame{Truth: color}
		if cfg.RealImages {
			im, _ := vision.GenerateIntersection(vision.Scene{W: 160, H: 120, Noise: 20, Seed: cfg.Seed}, color, 3)
			f.Image = im
		}
		push("S1", f, cfg.WireBytes, "image")
	})
}

// SGUpstreamConfig parameterises the previous-intersection feed (S0) used
// when a region is the first in the cascade.
type SGUpstreamConfig struct {
	Period time.Duration // default 30 s
	Seed   int64
}

// StartSGUpstream feeds synthetic upstream advisories into source S0.
func (g *Generator) StartSGUpstream(push Push, cfg SGUpstreamConfig) {
	if cfg.Period <= 0 {
		cfg.Period = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	g.every(cfg.Period, cfg.Seed, func(i int) {
		adv := signalguru.Advisory{Color: vision.LightColor(i % 3), NextInSec: 20 + float64(rng.Intn(20))}
		push("S0", adv, 512, "advisory")
	})
}
