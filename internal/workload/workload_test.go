package workload

import (
	"sync"
	"testing"
	"time"

	"mobistreams/internal/apps/bcp"
	"mobistreams/internal/apps/signalguru"
	"mobistreams/internal/clock"
	"mobistreams/internal/vision"
)

type capture struct {
	mu    sync.Mutex
	items []struct {
		src  string
		kind string
		size int
		val  interface{}
	}
}

func (c *capture) push(src string, v interface{}, size int, kind string) {
	c.mu.Lock()
	c.items = append(c.items, struct {
		src  string
		kind string
		size int
		val  interface{}
	}{src, kind, size, v})
	c.mu.Unlock()
}

func (c *capture) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func TestBCPCameraFeed(t *testing.T) {
	clk := clock.NewScaled(500)
	g := NewGenerator(clk)
	var c capture
	g.StartBCPCamera(c.push, BCPCameraConfig{Period: time.Second, Seed: 1})
	clk.Sleep(12 * time.Second)
	g.Stop()
	n := c.count()
	if n < 7 || n > 13 {
		t.Fatalf("frames in 12s at 1/s = %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, it := range c.items {
		if it.src != "S1" || it.kind != "image" {
			t.Fatalf("bad item: %+v", it)
		}
		if it.size != 180<<10 {
			t.Fatalf("wire size = %d", it.size)
		}
		f, ok := it.val.(bcp.Frame)
		if !ok {
			t.Fatalf("payload %T", it.val)
		}
		if f.Image != nil {
			t.Fatal("real images off by default")
		}
	}
}

func TestBCPCameraRealImages(t *testing.T) {
	clk := clock.NewScaled(500)
	g := NewGenerator(clk)
	var c capture
	g.StartBCPCamera(c.push, BCPCameraConfig{Period: time.Second, RealImages: true, Seed: 2})
	clk.Sleep(3 * time.Second)
	g.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.items) == 0 {
		t.Fatal("no frames")
	}
	f := c.items[0].val.(bcp.Frame)
	if f.Image == nil {
		t.Fatal("no image rendered")
	}
	if got := vision.CountFaces(f.Image); got != f.Planted {
		t.Fatalf("vision count %d != planted %d", got, f.Planted)
	}
}

func TestBCPBusCorruption(t *testing.T) {
	clk := clock.NewScaled(500)
	g := NewGenerator(clk)
	var c capture
	g.StartBCPBus(c.push, BCPBusConfig{Period: time.Second, CorruptEvery: 3, Seed: 3})
	clk.Sleep(10 * time.Second)
	g.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	corrupt := 0
	for _, it := range c.items {
		if it.val.(bcp.BusInfo).Corrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("no corrupt readings injected")
	}
	if corrupt*2 > len(c.items) {
		t.Fatalf("too many corrupt: %d of %d", corrupt, len(c.items))
	}
}

func TestSGCameraPhases(t *testing.T) {
	clk := clock.NewScaled(500)
	g := NewGenerator(clk)
	var c capture
	g.StartSGCamera(c.push, SGCameraConfig{Period: time.Second, PhaseLen: 3, Seed: 4})
	clk.Sleep(20 * time.Second)
	g.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.items) < 12 {
		t.Fatalf("frames = %d", len(c.items))
	}
	// The colour must cycle red -> green -> yellow every 3 frames.
	seen := map[vision.LightColor]bool{}
	for i, it := range c.items {
		f := it.val.(signalguru.Frame)
		want := []vision.LightColor{vision.Red, vision.Green, vision.Yellow}[(i/3)%3]
		if f.Truth != want {
			t.Fatalf("frame %d colour = %v, want %v", i, f.Truth, want)
		}
		seen[f.Truth] = true
	}
	if len(seen) != 3 {
		t.Fatalf("colours seen = %v", seen)
	}
}

func TestSGUpstreamFeed(t *testing.T) {
	clk := clock.NewScaled(500)
	g := NewGenerator(clk)
	var c capture
	g.StartSGUpstream(c.push, SGUpstreamConfig{Period: time.Second, Seed: 5})
	// 20 simulated seconds is 40 ms of wall time at speedup 500; a
	// shorter window can close before the generator's first tick fires
	// when timer wake-ups overshoot on a busy host.
	clk.Sleep(20 * time.Second)
	g.Stop()
	if c.count() == 0 {
		t.Fatal("no advisories")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[0].val.(signalguru.Advisory); !ok {
		t.Fatalf("payload %T", c.items[0].val)
	}
}

func TestGeneratorStopIsIdempotent(t *testing.T) {
	g := NewGenerator(clock.NewScaled(500))
	g.Stop()
	g.Stop()
}
