package workload

import (
	"math"
	"math/rand"
	"time"

	"mobistreams/internal/phone"
	"mobistreams/internal/simnet"
)

// ChurnConfig parameterises the churn scenario generator: Poisson phone
// join/leave processes, battery-cliff leaves (the phone's pack suddenly
// reports nearly empty — the paper's dominant failure cause), and
// commuter-trace mobility leaves (the phone walks a straight line out of
// the WiFi range boundary, §III-E).
type ChurnConfig struct {
	// MeanLeave is the mean of the exponential inter-leave time (Poisson
	// process); 0 disables leaves.
	MeanLeave time.Duration
	// MeanJoin is the mean inter-join time; 0 disables joins.
	MeanJoin time.Duration
	// CliffShare is the probability a leave manifests as a battery cliff
	// rather than a commuter walk (default 0.5).
	CliffShare float64
	// CliffFraction is the battery fraction a cliff drops the victim to
	// (default 0.08: above the 0.05 chronic threshold, so the reactive
	// path sees nothing until the drain crosses it).
	CliffFraction float64
	// WalkSpeed is the commuter speed in m/s (default 12).
	WalkSpeed float64
	// MobilityTick is the position-update period for walking phones
	// (default 1 s of simulated time).
	MobilityTick time.Duration
	// Centre and RadiusM describe the WiFi coverage disc a walking phone
	// exits (RadiusM default 120 m).
	Centre  phone.Position
	RadiusM float64
	Seed    int64
}

func (c *ChurnConfig) applyDefaults() {
	if c.CliffShare <= 0 {
		c.CliffShare = 0.5
	}
	if c.CliffFraction <= 0 {
		c.CliffFraction = 0.08
	}
	if c.WalkSpeed <= 0 {
		c.WalkSpeed = 12
	}
	if c.MobilityTick <= 0 {
		c.MobilityTick = time.Second
	}
	if c.RadiusM <= 0 {
		c.RadiusM = 120
	}
}

// ChurnHooks connects the generator to the system under test. All hooks
// must be non-nil except Join (nil disables joins regardless of MeanJoin).
type ChurnHooks struct {
	// Victim picks the next phone to leave; ok=false skips this event.
	Victim func(r *rand.Rand) (simnet.NodeID, bool)
	// Cliff applies a battery cliff to the victim.
	Cliff func(id simnet.NodeID, fraction float64)
	// Pos and SetPos read and write a walking phone's GPS fix.
	Pos    func(id simnet.NodeID) phone.Position
	SetPos func(id simnet.NodeID, p phone.Position)
	// SetVel records the walker's velocity (the scheduler's trajectory
	// telemetry).
	SetVel func(id simnet.NodeID, vx, vy float64)
	// Departed fires when a walker crosses the range boundary — the GPS
	// departure feed of §III-E.
	Departed func(id simnet.NodeID)
	// Join recruits phone number i into the region.
	Join func(i int)
}

// StartChurn launches the join and leave processes. Event times are drawn
// from seeded exponentials, so two runs with the same seed and config see
// the same churn schedule — the basis for reactive-vs-scheduler A/B runs.
func (g *Generator) StartChurn(hooks ChurnHooks, cfg ChurnConfig) {
	cfg.applyDefaults()
	if cfg.MeanLeave > 0 {
		g.wg.Add(1)
		go g.leaveLoop(hooks, cfg)
	}
	if cfg.MeanJoin > 0 && hooks.Join != nil {
		g.wg.Add(1)
		go g.joinLoop(hooks, cfg)
	}
}

func (g *Generator) joinLoop(hooks ChurnHooks, cfg ChurnConfig) {
	defer g.wg.Done()
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	for i := 0; ; i++ {
		d := time.Duration(rng.ExpFloat64() * float64(cfg.MeanJoin))
		select {
		case <-g.clk.After(d):
			hooks.Join(i)
		case <-g.stopCh:
			return
		}
	}
}

func (g *Generator) leaveLoop(hooks ChurnHooks, cfg ChurnConfig) {
	defer g.wg.Done()
	rng := rand.New(rand.NewSource(cfg.Seed + 102))
	for {
		d := time.Duration(rng.ExpFloat64() * float64(cfg.MeanLeave))
		select {
		case <-g.clk.After(d):
		case <-g.stopCh:
			return
		}
		id, ok := hooks.Victim(rng)
		if !ok {
			continue
		}
		if rng.Float64() < cfg.CliffShare {
			hooks.Cliff(id, cfg.CliffFraction)
			continue
		}
		// Commuter walk: head radially outward from the centre through the
		// phone's current position (random bearing when it sits at the
		// centre), update the GPS fix every tick, and report the departure
		// when the boundary is crossed.
		pos := hooks.Pos(id)
		dx, dy := pos.X-cfg.Centre.X, pos.Y-cfg.Centre.Y
		if dist := math.Hypot(dx, dy); dist > 1e-9 {
			dx, dy = dx/dist, dy/dist
		} else {
			theta := rng.Float64() * 2 * math.Pi
			dx, dy = math.Cos(theta), math.Sin(theta)
		}
		vx, vy := dx*cfg.WalkSpeed, dy*cfg.WalkSpeed
		hooks.SetVel(id, vx, vy)
		g.wg.Add(1)
		go g.walk(hooks, cfg, id, vx, vy)
	}
}

func (g *Generator) walk(hooks ChurnHooks, cfg ChurnConfig, id simnet.NodeID, vx, vy float64) {
	defer g.wg.Done()
	step := cfg.MobilityTick.Seconds()
	for {
		select {
		case <-g.clk.After(cfg.MobilityTick):
		case <-g.stopCh:
			return
		}
		pos := hooks.Pos(id)
		pos.X += vx * step
		pos.Y += vy * step
		hooks.SetPos(id, pos)
		if pos.DistanceSq(cfg.Centre) >= cfg.RadiusM*cfg.RadiusM {
			hooks.Departed(id)
			return
		}
	}
}
