// Package ft enumerates the fault-tolerance schemes the paper evaluates
// (§IV-B) and the policy predicates the runtime branches on. The scheme
// implementations themselves live in the node, region and controller
// runtimes; this package is the single place that defines what each scheme
// does and can survive.
package ft

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies a fault-tolerance scheme.
type Kind int

const (
	// Base is the baseline with no fault tolerance.
	Base Kind = iota
	// Rep2 is active standby: two replicas per operator (Flux, Borealis
	// DPC). Tolerates exactly one failure.
	Rep2
	// Local is checkpoint-to-local-storage with input preservation. Not
	// a realistic phone fault model; the paper's performance upper bound.
	Local
	// DistN is distributed checkpointing: state unicast to N other nodes
	// plus input preservation (Cooperative HA, SGuard). Tolerates up to
	// N simultaneous failures.
	DistN
	// MS is MobiStreams: token-triggered checkpointing with source
	// preservation and broadcast-based persistence to every node.
	MS
)

// Scheme is a configured fault-tolerance scheme.
type Scheme struct {
	Kind Kind
	// N is the replica count for DistN.
	N int
}

// Common scheme constructors.
var (
	BaseScheme  = Scheme{Kind: Base}
	Rep2Scheme  = Scheme{Kind: Rep2}
	LocalScheme = Scheme{Kind: Local}
	MSScheme    = Scheme{Kind: MS}
)

// Dist returns a dist-n scheme.
func Dist(n int) Scheme { return Scheme{Kind: DistN, N: n} }

func (s Scheme) String() string {
	switch s.Kind {
	case Base:
		return "base"
	case Rep2:
		return "rep-2"
	case Local:
		return "local"
	case DistN:
		return fmt.Sprintf("dist-%d", s.N)
	case MS:
		return "ms"
	default:
		return fmt.Sprintf("scheme(%d)", int(s.Kind))
	}
}

// Parse parses a scheme name as printed by String ("base", "rep-2",
// "local", "dist-3", "ms").
func Parse(name string) (Scheme, error) {
	switch {
	case name == "base":
		return BaseScheme, nil
	case name == "rep-2" || name == "rep2":
		return Rep2Scheme, nil
	case name == "local":
		return LocalScheme, nil
	case name == "ms":
		return MSScheme, nil
	case strings.HasPrefix(name, "dist-"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "dist-"))
		if err != nil || n < 1 {
			return Scheme{}, fmt.Errorf("ft: bad dist scheme %q", name)
		}
		return Dist(n), nil
	default:
		return Scheme{}, fmt.Errorf("ft: unknown scheme %q", name)
	}
}

// UsesTokens reports whether checkpoints are coordinated by in-band tokens
// (MobiStreams) rather than per-node periodic snapshots.
func (s Scheme) UsesTokens() bool { return s.Kind == MS }

// PreservesAtSources reports whether only source nodes preserve input
// (MobiStreams' source preservation).
func (s Scheme) PreservesAtSources() bool { return s.Kind == MS }

// PreservesAtEdges reports whether every node retains its output tuples
// until the downstream checkpoint commits (classic input preservation).
func (s Scheme) PreservesAtEdges() bool { return s.Kind == Local || s.Kind == DistN }

// PeriodicSnapshot reports whether the scheme snapshots on a timer without
// token coordination.
func (s Scheme) PeriodicSnapshot() bool { return s.Kind == Local || s.Kind == DistN }

// Replicated reports whether every operator runs an active standby.
func (s Scheme) Replicated() bool { return s.Kind == Rep2 }

// Checkpoints reports whether the scheme checkpoints at all.
func (s Scheme) Checkpoints() bool {
	return s.Kind == Local || s.Kind == DistN || s.Kind == MS
}

// StateCopies reports how many remote copies of a node's checkpoint state
// the scheme keeps, given the region size (active + idle phones).
func (s Scheme) StateCopies(regionSize int) int {
	switch s.Kind {
	case DistN:
		return s.N
	case MS:
		if regionSize > 0 {
			return regionSize - 1
		}
		return 0
	default:
		return 0
	}
}

// CanRecover reports whether the scheme can recover from k simultaneous
// phone failures, with `spare` healthy phones available as replacements.
// MobiStreams recovers as long as at least one phone with full MRC data
// remains and there are enough phones to re-host the slots.
func (s Scheme) CanRecover(k, spare int) bool {
	if k == 0 {
		return true
	}
	switch s.Kind {
	case Base:
		return false
	case Rep2:
		return k <= 1
	case Local:
		// The phone "restarts" with its storage intact; any number of
		// restarts recover (the unrealistic upper-bound fault model).
		return true
	case DistN:
		return k <= s.N && spare >= k
	case MS:
		return spare >= k
	default:
		return false
	}
}

// HandlesDepartures reports whether the scheme has a mobility story
// (§III-E). Prior schemes were designed for servers and do not.
func (s Scheme) HandlesDepartures() bool { return s.Kind == MS }
