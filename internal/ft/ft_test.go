package ft

import "testing"

func TestStringParseRoundTrip(t *testing.T) {
	schemes := []Scheme{BaseScheme, Rep2Scheme, LocalScheme, Dist(1), Dist(3), MSScheme}
	for _, s := range schemes {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("parse %q: %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %q -> %+v", s.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "nope", "dist-", "dist-0", "dist-x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestPolicyPredicates(t *testing.T) {
	if !MSScheme.UsesTokens() || BaseScheme.UsesTokens() || LocalScheme.UsesTokens() {
		t.Fatal("UsesTokens wrong")
	}
	if !MSScheme.PreservesAtSources() || LocalScheme.PreservesAtSources() {
		t.Fatal("PreservesAtSources wrong")
	}
	if !LocalScheme.PreservesAtEdges() || !Dist(2).PreservesAtEdges() || MSScheme.PreservesAtEdges() {
		t.Fatal("PreservesAtEdges wrong")
	}
	if !LocalScheme.PeriodicSnapshot() || MSScheme.PeriodicSnapshot() || Rep2Scheme.PeriodicSnapshot() {
		t.Fatal("PeriodicSnapshot wrong")
	}
	if !Rep2Scheme.Replicated() || MSScheme.Replicated() {
		t.Fatal("Replicated wrong")
	}
	if BaseScheme.Checkpoints() || Rep2Scheme.Checkpoints() || !MSScheme.Checkpoints() || !Dist(1).Checkpoints() {
		t.Fatal("Checkpoints wrong")
	}
	if !MSScheme.HandlesDepartures() || Dist(3).HandlesDepartures() {
		t.Fatal("HandlesDepartures wrong")
	}
}

func TestStateCopies(t *testing.T) {
	if got := Dist(3).StateCopies(8); got != 3 {
		t.Fatalf("dist-3 copies = %d", got)
	}
	if got := MSScheme.StateCopies(8); got != 7 {
		t.Fatalf("ms copies = %d", got)
	}
	if got := LocalScheme.StateCopies(8); got != 0 {
		t.Fatalf("local copies = %d", got)
	}
	if got := MSScheme.StateCopies(0); got != 0 {
		t.Fatalf("ms copies empty region = %d", got)
	}
}

func TestCanRecover(t *testing.T) {
	cases := []struct {
		s     Scheme
		k     int
		spare int
		want  bool
	}{
		{BaseScheme, 0, 0, true},
		{BaseScheme, 1, 8, false},
		{Rep2Scheme, 1, 0, true},
		{Rep2Scheme, 2, 8, false},
		{LocalScheme, 8, 0, true},
		{Dist(2), 2, 2, true},
		{Dist(2), 3, 8, false},
		{Dist(2), 2, 1, false},
		{MSScheme, 8, 8, true},
		{MSScheme, 3, 2, false},
		{MSScheme, 0, 0, true},
	}
	for _, c := range cases {
		if got := c.s.CanRecover(c.k, c.spare); got != c.want {
			t.Errorf("%s.CanRecover(%d,%d) = %v, want %v", c.s, c.k, c.spare, got, c.want)
		}
	}
}
