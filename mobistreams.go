// Package mobistreams is a reliable distributed stream processing system
// for mobile devices, reproducing Wang & Peh, "MobiStreams" (IPDPS 2014).
//
// A MobiStreams deployment is a set of regions — clusters of phones in
// ad-hoc WiFi range running one DSPS each — cascaded over the cellular
// network and coordinated by a lightweight controller. Fault tolerance
// comes from token-triggered checkpointing (source-coordinated consistent
// snapshots with source preservation) and broadcast-based checkpointing
// (multi-phase UDP dissemination of state to every phone), so a region
// survives burst failures and phone departures.
//
// Quick start — declare a pipeline with the typed stream builder, compile
// it onto a region, ingest readings:
//
//	p, _ := stream.From[float64]("sensor").
//		Map("smooth", func(v float64) float64 { return v * 0.5 }).
//		Window("avg", 16).
//		Sink("out", func(v float64) { fmt.Println(v) }).
//		Build()
//	sys := mobistreams.NewSystem(mobistreams.SystemConfig{Speedup: 50})
//	region, _ := sys.AddRegion(mobistreams.PipelineSpec("demo", p, mobistreams.MS, 5))
//	sys.Start()
//	region.Ingest("sensor", 21.5, 1024, "reading")
//
// Custom operators implement the emit-context contract: Process receives
// an *OperatorContext whose Emit/EmitTo push results straight into the
// node's compiled pipeline (no per-tuple slice allocation), plus simulated
// time, one-shot timers and a per-key state handle:
//
//	func (o *smoother) Process(ctx *mobistreams.OperatorContext, from string, t *mobistreams.Tuple) error {
//		o.ewma = 0.8*o.ewma + 0.2*t.Value.(float64)
//		out := t.Clone()
//		out.Value = o.ewma
//		ctx.Emit(out)
//		return nil
//	}
//
// Migration note: the seed-era contract — Process(from string, t *Tuple)
// ([]Out, error) — keeps working unchanged; the executor adapts it
// transparently (see operator.LegacyProcessor). Likewise the hand-wired
// NewGraphBuilder/Registry/RegionSpec path remains the low-level API the
// stream builder compiles onto.
//
// The internal packages implement the substrates: simulated WiFi/cellular
// networks, the phone model, the node/region/controller runtimes, the two
// driving applications (bus capacity prediction, SignalGuru) and the
// benchmark harness that regenerates the paper's tables and figures.
package mobistreams

import (
	"fmt"
	"sync"
	"time"

	"mobistreams/internal/broadcast"
	"mobistreams/internal/clock"
	"mobistreams/internal/controller"
	"mobistreams/internal/ft"
	"mobistreams/internal/graph"
	"mobistreams/internal/metrics"
	"mobistreams/internal/node"
	"mobistreams/internal/operator"
	"mobistreams/internal/region"
	"mobistreams/internal/scheduler"
	"mobistreams/internal/simnet"
	"mobistreams/internal/tuple"
	"mobistreams/stream"
)

// Re-exported building blocks: applications define operators and graphs
// with these.
type (
	// Operator is the unit of work placed on a phone: identity, cost and
	// snapshotable state. Implement Processor (preferred) or
	// LegacyOperator alongside it; see internal/operator.
	Operator = operator.Operator
	// Processor is the emit-context processing contract: Process
	// receives an *OperatorContext and pushes emissions through it.
	Processor = operator.Processor
	// LegacyOperator is the seed-era processing contract returning
	// []Out slices; it runs unchanged through an adapter.
	LegacyOperator = operator.LegacyProcessor
	// OperatorContext is the per-operator emit-context: Emit/EmitTo,
	// simulated time, one-shot timers and the per-key state handle.
	OperatorContext = operator.Context
	// OperatorBase provides defaults for stateless operators.
	OperatorBase = operator.Base
	// Out is one operator emission (legacy contract and operator.Run).
	Out = operator.Out
	// Registry maps operator IDs to factories ("the code" the
	// controller ships to phones).
	Registry = operator.Registry
	// Tuple is the unit of data in a stream.
	Tuple = tuple.Tuple
	// Graph is a validated query network.
	Graph = graph.Graph
	// GraphBuilder accumulates operators and edges.
	GraphBuilder = graph.Builder
	// Scheme selects a fault-tolerance scheme.
	Scheme = ft.Scheme
	// Report summarises a region's metrics.
	Report = metrics.Report
	// BatchConfig bounds edge-level tuple batching.
	//
	// Deprecated: prefer QoS, which consolidates the batching knobs
	// behind a latency budget; BatchConfig keeps working and is
	// overridden field-by-field by non-zero QoS fields.
	BatchConfig = node.BatchConfig
	// QoS consolidates output-path quality of service: an end-to-end
	// latency budget driving adaptive batch-flush deadlines, plus batch
	// size bounds.
	QoS = node.QoS
)

// Fault-tolerance schemes (§IV-B).
var (
	// Base runs without fault tolerance.
	Base = ft.BaseScheme
	// Rep2 is active standby replication.
	Rep2 = ft.Rep2Scheme
	// Local checkpoints to local storage only (upper bound baseline).
	Local = ft.LocalScheme
	// MS is MobiStreams: token-triggered + broadcast-based checkpointing.
	MS = ft.MSScheme
)

// Dist returns the dist-n distributed checkpointing scheme.
func Dist(n int) Scheme { return ft.Dist(n) }

// ParseScheme parses "base", "rep-2", "local", "dist-3" or "ms".
func ParseScheme(s string) (Scheme, error) { return ft.Parse(s) }

// Emit builds a fan-out emission; EmitTo a routed one.
func Emit(t *Tuple) Out              { return operator.Emit(t) }
func EmitTo(to string, t *Tuple) Out { return operator.EmitTo(to, t) }

// NewGraphBuilder returns an empty query-network builder.
func NewGraphBuilder() *GraphBuilder { return &graph.Builder{} }

// SystemConfig parameterises a deployment.
type SystemConfig struct {
	// Speedup scales simulated time against wall time (default 1: real
	// time; experiments use hundreds).
	Speedup float64
	// CheckpointPeriod is the controller's checkpoint interval (§IV:
	// 5 minutes; default 5 minutes).
	CheckpointPeriod time.Duration
	// PingInterval/PingTimeout drive failure detection (defaults 30 s /
	// 10 s, §IV).
	PingInterval time.Duration
	PingTimeout  time.Duration
	// Cellular configures the wide-area network (defaults to the
	// paper's measured 3G rates).
	Cellular simnet.CellularConfig
	// AdaptivePlacement enables the telemetry-driven placement scheduler:
	// the controller polls every region's battery, backlog and trajectory
	// telemetry each ScheduleTick and live-migrates slots off at-risk
	// phones before they fail or depart (proactive, in addition to the
	// paper's reactive recovery).
	AdaptivePlacement bool
	// ScheduleTick is the scheduler's telemetry/planning period (default
	// 10 s; ignored unless AdaptivePlacement is set).
	ScheduleTick time.Duration
	// Logf receives debug logging; nil disables.
	Logf func(string, ...interface{})
}

// RegionSpec declares one region.
type RegionSpec struct {
	ID       string
	Graph    *Graph
	Registry Registry
	Scheme   Scheme
	// Phones is the region population (slots plus idle spares).
	Phones int
	// WiFiBps is the shared-airtime capacity (default 3 Mbps); WiFiLoss
	// the UDP loss probability. A zero WiFiLoss means "use the default
	// 2%" — set LosslessWiFi for an actually lossless medium.
	WiFiBps  float64
	WiFiLoss float64
	// LosslessWiFi runs the region WiFi with zero UDP loss. The zero
	// value of WiFiLoss selects the 2% default (so specs that never
	// thought about loss keep the paper's medium); this flag is the
	// explicit way to configure a lossless region, which WiFiLoss alone
	// cannot express.
	LosslessWiFi bool
	Seed         int64
	// Batch bounds edge-level tuple batching on every node's emission
	// path; the zero value enables batching with defaults.
	//
	// Deprecated: prefer QoS; non-zero QoS fields override Batch
	// field-by-field while the zero QoS leaves Batch behavior untouched.
	Batch BatchConfig
	// QoS consolidates the output-path quality-of-service knobs: a
	// latency budget enabling adaptive batch-flush deadlines plus batch
	// size bounds (see node.QoS).
	QoS QoS
	// OnOutput receives every deduplicated sink result; may be nil.
	OnOutput func(t *Tuple)
}

// System is a running MobiStreams deployment.
type System struct {
	cfg  SystemConfig
	clk  *clock.Scaled
	cell *simnet.Cellular
	ctrl *controller.Controller

	mu      sync.Mutex
	regions map[string]*Region
	started bool
}

// Region wraps one region's runtime.
type Region struct {
	sys *System
	r   *region.Region

	mu         sync.Mutex
	downstream []cascade
	onOutput   func(t *Tuple)
}

type cascade struct {
	to    *Region
	srcOp string
}

// NewSystem creates a deployment skeleton: clock, cellular network and
// controller.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}
	clk := clock.NewScaled(cfg.Speedup)
	// The caller's cellular config is passed through as-is; simnet applies
	// its defaults (e.g. 64 KB ChunkBytes) only to unset fields.
	cell := simnet.NewCellular(clk, cfg.Cellular)
	ctrlCfg := controller.Config{
		Clock:            clk,
		Cell:             cell,
		CheckpointPeriod: cfg.CheckpointPeriod,
		PingInterval:     cfg.PingInterval,
		PingTimeout:      cfg.PingTimeout,
		Logf:             cfg.Logf,
	}
	if cfg.AdaptivePlacement {
		ctrlCfg.Sched = scheduler.New(scheduler.Config{})
		ctrlCfg.ScheduleTick = cfg.ScheduleTick
	}
	ctrl := controller.New(ctrlCfg)
	return &System{cfg: cfg, clk: clk, cell: cell, ctrl: ctrl, regions: make(map[string]*Region)}
}

// Clock returns the system clock; Sleep and Now operate in simulated time.
func (s *System) Clock() *clock.Scaled { return s.clk }

// wifiLoss resolves the spec's loss knobs: LosslessWiFi wins, an explicit
// WiFiLoss is respected, and the zero value falls back to the 2% default.
func (spec RegionSpec) wifiLoss() (float64, error) {
	if spec.LosslessWiFi {
		if spec.WiFiLoss != 0 {
			return 0, fmt.Errorf("mobistreams: region %q sets both LosslessWiFi and WiFiLoss=%g", spec.ID, spec.WiFiLoss)
		}
		return 0, nil
	}
	if spec.WiFiLoss < 0 || spec.WiFiLoss >= 1 {
		return 0, fmt.Errorf("mobistreams: region %q WiFiLoss=%g outside [0,1)", spec.ID, spec.WiFiLoss)
	}
	if spec.WiFiLoss == 0 {
		return 0.02, nil
	}
	return spec.WiFiLoss, nil
}

// PipelineSpec compiles a stream-built pipeline into a RegionSpec: the
// same Graph + Registry + RegionSpec triple the hand-wired API assembles,
// with the pipeline's typed sink callbacks wired to OnOutput. Adjust the
// returned spec (WiFi, batching, seed) before AddRegion as needed.
func PipelineSpec(id string, p *stream.Pipeline, scheme Scheme, phones int) RegionSpec {
	spec := RegionSpec{ID: id, Graph: p.Graph(), Registry: p.Registry(), Scheme: scheme, Phones: phones}
	spec.QoS.LatencyBudget = p.LatencyBudget()
	if p.HasOutput() {
		spec.OnOutput = p.Output
	}
	return spec
}

// AddRegion builds a region. Call before Start.
func (s *System) AddRegion(spec RegionSpec) (*Region, error) {
	if spec.Graph == nil || spec.Registry == nil {
		return nil, fmt.Errorf("mobistreams: region %q needs a graph and a registry", spec.ID)
	}
	if spec.WiFiBps <= 0 {
		spec.WiFiBps = 3e6
	}
	loss, err := spec.wifiLoss()
	if err != nil {
		return nil, err
	}
	spec.WiFiLoss = loss
	wrapped := &Region{sys: s, onOutput: spec.OnOutput}
	r, err := region.New(region.Config{
		ID:                spec.ID,
		Graph:             spec.Graph,
		Registry:          spec.Registry,
		Scheme:            spec.Scheme,
		Phones:            spec.Phones,
		Clock:             s.clk,
		WiFi:              simnet.WiFiConfig{BitsPerSecond: spec.WiFiBps, LossProb: spec.WiFiLoss, Seed: spec.Seed},
		Cell:              s.cell,
		ControllerID:      s.ctrl.ID(),
		Broadcast:         broadcast.Config{BlockSize: 1024},
		PreserveBroadcast: spec.Scheme.Kind == ft.MS,
		Batch:             spec.Batch,
		QoS:               spec.QoS,
		OnSinkOutput:      wrapped.publish,
		Logf:              s.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	wrapped.r = r
	s.ctrl.AddRegion(r)
	s.mu.Lock()
	s.regions[spec.ID] = wrapped
	s.mu.Unlock()
	return wrapped, nil
}

// Connect cascades one region's results into a downstream region's source
// operator over the cellular network (Fig. 4's inter-region arrows).
func (s *System) Connect(from, to *Region, srcOp string) {
	from.mu.Lock()
	from.downstream = append(from.downstream, cascade{to: to, srcOp: srcOp})
	from.mu.Unlock()
}

// Start launches every region and the controller.
func (s *System) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	regions := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	s.mu.Unlock()
	for _, r := range regions {
		r.r.Start()
	}
	s.ctrl.Start()
}

// Stop shuts the deployment down.
func (s *System) Stop() {
	s.mu.Lock()
	regions := make([]*Region, 0, len(s.regions))
	for _, r := range s.regions {
		regions = append(regions, r)
	}
	s.mu.Unlock()
	for _, r := range regions {
		r.r.Stop()
	}
	s.ctrl.Stop()
}

// publish handles one deduplicated sink result: the app callback runs
// first, then the result cascades to downstream regions over cellular.
func (rg *Region) publish(publisher simnet.NodeID, t *tuple.Tuple) {
	rg.mu.Lock()
	cb := rg.onOutput
	downs := append([]cascade(nil), rg.downstream...)
	rg.mu.Unlock()
	if cb != nil {
		cb(t)
	}
	for _, d := range downs {
		slot := d.to.r.Graph().SlotOf(d.srcOp)
		target, ok := d.to.r.Placement(slot)
		if !ok {
			continue
		}
		msg := node.InterRegionMsg{SrcOp: d.srcOp, Kind: t.Kind, Size: t.Size, Value: t.Value}
		rg.sys.cell.Send(publisher, target, simnet.ClassData, t.Size, msg)
	}
}

// Ingest admits one externally sensed tuple at a source operator.
func (rg *Region) Ingest(srcOp string, value interface{}, size int, kind string) {
	rg.r.Ingest(srcOp, value, size, kind)
}

// Report summarises the region's metrics so far.
func (rg *Region) Report() Report {
	return rg.r.Report(rg.sys.clk.Now())
}

// Outputs reports how many unique results the region has published.
func (rg *Region) Outputs() int64 { return rg.r.Throughput.Count() }

// MeanLatency reports the mean end-to-end latency in simulated time.
func (rg *Region) MeanLatency() time.Duration { return rg.r.Latency.Mean() }

// InjectFailure crashes the phone currently hosting a slot (fault
// injection for tests and demos). Detection and recovery happen through
// the protocol.
func (rg *Region) InjectFailure(slot string) error {
	pid, ok := rg.r.Placement(slot)
	if !ok {
		return fmt.Errorf("mobistreams: no placement for slot %q", slot)
	}
	rg.r.FailPhone(pid)
	return nil
}

// InjectDeparture makes the phone hosting a slot leave the region (GPS
// notifies the controller, §III-E).
func (rg *Region) InjectDeparture(slot string) error {
	pid, ok := rg.r.Placement(slot)
	if !ok {
		return fmt.Errorf("mobistreams: no placement for slot %q", slot)
	}
	rg.r.DepartPhone(pid)
	rg.sys.ctrl.NotifyDeparture(rg.r.ID(), pid)
	return nil
}

// Recoveries reports how many recoveries the region has undergone.
func (rg *Region) Recoveries() int { return rg.sys.ctrl.Recoveries(rg.r.ID()) }

// Migrations reports how many planned live migrations the scheduler has
// completed for the region.
func (rg *Region) Migrations() int { return rg.sys.ctrl.Migrations(rg.r.ID()) }

// Committed reports the latest committed checkpoint version.
func (rg *Region) Committed() uint64 { return rg.sys.ctrl.Committed(rg.r.ID()) }

// TriggerCheckpoint starts a checkpoint round immediately (the periodic
// loop runs regardless).
func (rg *Region) TriggerCheckpoint() uint64 {
	return rg.sys.ctrl.TriggerCheckpoint(rg.r.ID())
}

// Dead reports whether the region was stopped and bypassed.
func (rg *Region) Dead() bool { return rg.sys.ctrl.RegionDead(rg.r.ID()) }
